"""Per-figure experiment definitions (paper §7 settings).

Each ``figN_*`` function runs the corresponding experiment at the
paper's published scale (via :class:`~repro.graph.stats.GraphStats` —
including the full 115M-edge Reddit degree model), returns the raw
:class:`~repro.bench.harness.RunResult` rows plus a rendered table, and
is invoked both by the ``benchmarks/`` suite (which asserts the paper's
qualitative shapes and persists the tables) and by EXPERIMENTS.md
regeneration.

Paper settings reproduced here:

- **Fig 7** — end-to-end training, normalised to DGL.
  GAT: 2 layers, hidden 128, 1 head (the fuseGNN-compatible setting);
  EdgeConv: 4 layers {64,64,128,256}, k ∈ {20,40}, batch ∈ {32,64};
  MoNet: 2 layers hidden 16, (k,r) per dataset as §7.2.
- **Fig 8** — reorganization ablation, forward only: GAT on Pubmed,
  EdgeConv 1 layer f=64 k=40.
- **Fig 9** — fusion ablation, forward only: GAT h=4 f=64 on Reddit,
  EdgeConv k=40 b=64 f=64, MoNet k=2 r=1 f=16 on Reddit.
- **Fig 10** — recomputation ablation, training: GAT and MoNet in the
  §7.3 settings, three variants (w/o fusion, fusion+stash,
  fusion+recompute).
- **Fig 11** — ours on RTX 2080 vs DGL on RTX 3090, all three models.
- **Inline §1** — 92.4 % redundant FLOPs (EdgeConv), 91.9 %
  intermediate-data memory share (GAT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.harness import (
    RunResult,
    measure_forward,
    measure_training,
    normalized_rows,
)
from repro.bench.report import format_table
from repro.session import PlanCache, Session
from repro.gpu.cost_model import CostModel
from repro.gpu.spec import GPUSpec, RTX2080, RTX3090
from repro.graph.datasets import get_dataset
from repro.graph.stats import GraphStats
from repro.models import GAT, EdgeConv, GraphSAGE, MoNet

__all__ = [
    "fig7_gat",
    "fig7_edgeconv",
    "fig7_monet",
    "fig8_reorganization",
    "fig9_fusion",
    "fig10_recomputation",
    "fig11_small_gpu",
    "fig_multi_gpu_scaling",
    "fig_overlap_efficiency",
    "fig_minibatch_io",
    "fig_memory_plan",
    "fig_static_analysis",
    "fig_precision_io",
    "fig_backend_calibration",
    "fig_serving_latency",
    "fig_dynamic_serving",
    "inline_redundant_computation",
    "inline_intermediate_memory_share",
]


# ----------------------------------------------------------------------
# Workload catalogues
# ----------------------------------------------------------------------
_CITATIONS = ("cora", "citeseer", "pubmed")


def _dataset_stats(name: str) -> GraphStats:
    return get_dataset(name).stats


def _modelnet_stats(batch: int, k: int) -> GraphStats:
    # 1024-point clouds; the k-NN topology is exactly k-regular.
    return GraphStats.regular(batch * 1024, k)


def _gat_for(name: str) -> GAT:
    ds = get_dataset(name)
    return GAT(ds.feature_dim, (128, ds.num_classes), heads=1)


def _monet_for(name: str) -> MoNet:
    ds = get_dataset(name)
    k, r = {"cora": (3, 2), "citeseer": (3, 3), "pubmed": (3, 3)}.get(
        name, (2, 1)
    )
    return MoNet(
        ds.feature_dim, (16, ds.num_classes), num_kernels=k, pseudo_dim=r
    )


# The §7.3 ablation settings.
def _gat_ablation(training: bool) -> GAT:
    ds = get_dataset("reddit-full")
    dims = (64, ds.num_classes) if training else (64,)
    return GAT(ds.feature_dim, dims, heads=4)


def _monet_ablation(training: bool) -> MoNet:
    ds = get_dataset("reddit-full")
    dims = (16, ds.num_classes) if training else (16,)
    return MoNet(ds.feature_dim, dims, num_kernels=2, pseudo_dim=1)


def _edgeconv_ablation(training: bool) -> EdgeConv:
    return EdgeConv(3, (64, 64, 128, 256) if training else (64,))


@dataclass
class FigureResult:
    """Raw rows plus the rendered table for one figure."""

    name: str
    results: List[RunResult]
    table: str
    normalized: List[Dict[str, object]]

    def by(self, **match) -> List[RunResult]:
        out = []
        for r in self.results:
            if all(getattr(r, k) == v for k, v in match.items()):
                out.append(r)
        return out

    def norm(self, workload: str, strategy: str) -> Dict[str, object]:
        for row in self.normalized:
            if row["workload"] == workload and row["strategy"] == strategy:
                return row
        raise KeyError((workload, strategy))


def _run_grid(
    name: str,
    runs: Sequence[Tuple[object, str, GraphStats]],
    strategies: Sequence[str],
    *,
    gpu: GPUSpec = RTX3090,
    training: bool = True,
    baseline: str = "dgl-like",
) -> FigureResult:
    measure = measure_training if training else measure_forward
    # One plan cache per grid: workloads sharing a model instance (and
    # every repeated strategy) reuse one compilation.
    cache = PlanCache()
    results: List[RunResult] = []
    for model, workload, stats in runs:
        for strategy in strategies:
            results.append(
                measure(model, workload, stats, strategy, gpu, cache=cache)
            )
    normalized = normalized_rows(results, baseline=baseline)
    rows = [
        [
            r["workload"], r["strategy"],
            f"{r['speedup']:.2f}x", f"{r['io_saving']:.2f}x",
            f"{r['memory_saving']:.2f}x",
        ]
        for r in normalized
    ]
    table = format_table(
        ["workload", "strategy", "speedup", "io-saving", "mem-saving"],
        rows,
        title=f"{name} (normalised to {baseline}, {gpu.name})",
    )
    return FigureResult(name=name, results=results, table=table, normalized=normalized)


# ======================================================================
# Figure 7 — end-to-end training vs DGL (and fuseGNN for GAT)
# ======================================================================
def fig7_gat() -> FigureResult:
    runs = [
        (_gat_for(n), n, _dataset_stats(n)) for n in _CITATIONS
    ] + [(_gat_for("reddit-full"), "reddit", _dataset_stats("reddit-full"))]
    return _run_grid(
        "fig7-gat",
        runs,
        strategies=("dgl-like", "fusegnn-like", "ours"),
    )


def fig7_edgeconv() -> FigureResult:
    model = EdgeConv(3, (64, 64, 128, 256))
    runs = [
        (model, f"modelnet-k{k}-b{b}", _modelnet_stats(b, k))
        for k in (20, 40)
        for b in (32, 64)
    ]
    return _run_grid("fig7-edgeconv", runs, strategies=("dgl-like", "ours"))


def fig7_monet() -> FigureResult:
    runs = [
        (_monet_for(n), n, _dataset_stats(n)) for n in _CITATIONS
    ] + [(_monet_for("reddit-full"), "reddit", _dataset_stats("reddit-full"))]
    return _run_grid("fig7-monet", runs, strategies=("dgl-like", "ours"))


# ======================================================================
# Figure 8 — reorganization ablation (forward only)
# ======================================================================
def fig8_reorganization() -> FigureResult:
    runs = [
        (GAT(get_dataset("pubmed").feature_dim, (64,), heads=4),
         "gat-pubmed", _dataset_stats("pubmed")),
        (_edgeconv_ablation(training=False),
         "edgeconv-k40-b64", _modelnet_stats(64, 40)),
    ]
    return _run_grid(
        "fig8-reorganization",
        runs,
        strategies=("ours-noreorg", "ours"),
        training=False,
        baseline="ours-noreorg",
    )


# ======================================================================
# Figure 9 — fusion ablation (forward only)
# ======================================================================
def fig9_fusion() -> FigureResult:
    runs = [
        (_gat_ablation(training=False), "gat-reddit",
         _dataset_stats("reddit-full")),
        (_edgeconv_ablation(training=False), "edgeconv-k40-b64",
         _modelnet_stats(64, 40)),
        (_monet_ablation(training=False), "monet-reddit",
         _dataset_stats("reddit-full")),
    ]
    return _run_grid(
        "fig9-fusion",
        runs,
        strategies=("ours-nofusion", "ours"),
        training=False,
        baseline="ours-nofusion",
    )


# ======================================================================
# Figure 10 — recomputation ablation (training)
# ======================================================================
def fig10_recomputation() -> FigureResult:
    runs = [
        (_gat_ablation(training=True), "gat-reddit",
         _dataset_stats("reddit-full")),
        (_monet_ablation(training=True), "monet-reddit",
         _dataset_stats("reddit-full")),
    ]
    variants = ("ours-nofusion", "ours-stash", "ours")
    cache = PlanCache()
    results: List[RunResult] = []
    for model, workload, stats in runs:
        for strategy in variants:
            results.append(
                measure_training(
                    model, workload, stats, strategy, RTX3090, cache=cache
                )
            )
    rows = [
        [
            r.workload,
            {"ours-nofusion": "w/o fusion",
             "ours-stash": "fusion+stash",
             "ours": "fusion+recompute"}[r.strategy],
            f"{r.memory_gb:.2f}",
            f"{r.latency_s * 1e3:.2f}",
            f"{r.stash_bytes / 2**30:.2f}",
        ]
        for r in results
    ]
    table = format_table(
        ["workload", "variant", "memory (GiB)", "latency (ms)", "stash (GiB)"],
        rows,
        title="fig10-recomputation (RTX3090, one training step)",
    )
    normalized = normalized_rows(results, baseline="ours-stash")
    return FigureResult("fig10-recomputation", results, table, normalized)


# ======================================================================
# Figure 11 — small-memory GPU (RTX 2080) vs DGL on RTX 3090
# ======================================================================
def fig11_small_gpu() -> FigureResult:
    runs = [
        (GAT(get_dataset("reddit-full").feature_dim,
             (64, get_dataset("reddit-full").num_classes), heads=4),
         "gat-reddit", _dataset_stats("reddit-full")),
        (_edgeconv_ablation(training=True), "edgeconv-k40-b64",
         _modelnet_stats(64, 40)),
        (_monet_ablation(training=True), "monet-reddit",
         _dataset_stats("reddit-full")),
    ]
    # The device only enters at latency-model time, so each (model,
    # strategy) pair compiles once and serves both GPUs via the cache.
    cache = PlanCache()
    results: List[RunResult] = []
    for model, workload, stats in runs:
        for strategy, gpu in (
            ("dgl-like", RTX3090),
            ("ours", RTX3090),
            ("dgl-like", RTX2080),
            ("ours", RTX2080),
        ):
            results.append(
                measure_training(model, workload, stats, strategy, gpu, cache=cache)
            )
    rows = [
        [
            r.workload, r.strategy, r.gpu,
            "OOM" if r.oom else f"{r.latency_s * 1e3:.2f}",
            f"{r.memory_gb:.2f}",
        ]
        for r in results
    ]
    table = format_table(
        ["workload", "strategy", "gpu", "latency (ms)", "memory (GiB)"],
        rows,
        title="fig11-small-gpu (one training step; OOM = exceeds DRAM)",
    )
    return FigureResult("fig11-small-gpu", results, table, [])


# ======================================================================
# Multi-GPU scaling (partitioned execution extension)
# ======================================================================
def fig_multi_gpu_scaling(
    num_gpus: Sequence[int] = (1, 2, 4, 8),
    *,
    gpu_name: str = "V100",
) -> FigureResult:
    """Training-step scaling of GAT and MoNet across V100 clusters.

    For each GPU count the same compiled plan runs on a hash-partitioned
    Reddit workload (expected-partition model at the published 115M-edge
    scale): per-GPU compute shrinks roughly as ``1/P`` while halo
    exchange grows with the cut (``(P-1)/P`` of all edges), so the comm
    share of off-chip traffic rises monotonically with the GPU count and
    each model eventually crosses from compute- to communication-bound.
    Rows land in ``normalized`` as dicts keyed by (workload, gpus).

    Each partitioned row also reports the **overlap efficiency** of the
    async pipelined runtime: the step's serialized makespan divided by
    the overlapped one, summed over forward and backward
    :meth:`~repro.session.Session.overlap_schedules` (1.0 on one GPU,
    where there is nothing to overlap).
    """
    # Speedups are always relative to one GPU.
    if 1 not in num_gpus:
        num_gpus = (1,) + tuple(num_gpus)
    stats = _dataset_stats("reddit-full")
    runs = [
        (_gat_ablation(training=True), "gat-reddit"),
        (_monet_ablation(training=True), "monet-reddit"),
    ]
    cache = PlanCache()
    normalized: List[Dict[str, object]] = []
    for model, workload in runs:
        base_latency: Optional[float] = None
        for n in num_gpus:
            sess = (
                Session(cache=cache)
                .model(model).stats(stats, workload).strategy("ours")
            )
            if n <= 1:
                sess.gpu(gpu_name)
                latency = sess.latency_seconds()
                compute_s, comm_s = latency, 0.0
                comm_bytes, comm_fraction = 0, 0.0
                peak = sess.counters().peak_memory_bytes
                overlap_efficiency = 1.0
            else:
                sess.cluster(gpu_name, n)
                breakdown = sess.comm_breakdown()
                multi = sess.multi_counters()
                latency = breakdown.total_seconds
                compute_s, comm_s = (
                    breakdown.compute_seconds, breakdown.comm_seconds,
                )
                comm_bytes = multi.comm_bytes
                comm_fraction = multi.comm_fraction
                peak = multi.peak_memory_bytes
                schedules = sess.overlap_schedules()
                overlap_efficiency = sum(
                    s.serialized_makespan_s for s in schedules
                ) / sum(s.overlapped_makespan_s for s in schedules)
            if base_latency is None:
                base_latency = latency
            normalized.append(
                {
                    "workload": workload,
                    "strategy": "ours",
                    "gpus": n,
                    "latency_s": latency,
                    "speedup": base_latency / latency,
                    "comm_bytes": comm_bytes,
                    "comm_fraction": comm_fraction,
                    "compute_s": compute_s,
                    "comm_s": comm_s,
                    "peak_memory_bytes": peak,
                    "comm_bound": comm_s > compute_s,
                    "overlap_efficiency": overlap_efficiency,
                }
            )
    table_rows = [
        [
            r["workload"], r["gpus"],
            f"{r['latency_s'] * 1e3:.1f}",
            f"{r['speedup']:.2f}x",
            f"{r['comm_bytes'] / 2**30:.2f}",
            f"{r['comm_fraction'] * 100:.1f}%",
            f"{r['compute_s'] * 1e3:.1f}",
            f"{r['comm_s'] * 1e3:.1f}",
            "comm" if r["comm_bound"] else "compute",
            f"{r['overlap_efficiency']:.4f}x",
        ]
        for r in normalized
    ]
    table = format_table(
        ["workload", "gpus", "ms/step", "speedup", "halo GiB",
         "comm share", "compute ms", "comm ms", "bound", "overlap"],
        table_rows,
        title=(
            f"multi-gpu-scaling ({gpu_name} clusters, one training step, "
            "hash partition)"
        ),
    )
    return FigureResult("multi-gpu-scaling", [], table, normalized)


# ======================================================================
# Overlap efficiency (async pipelined runtime)
# ======================================================================
def fig_overlap_efficiency(
    num_gpus: Sequence[int] = (2, 4, 8),
    *,
    gpu_name: str = "V100",
    interconnect_gbps: Sequence[Optional[float]] = (None, 8.0),
) -> FigureResult:
    """Overlapped vs serialized makespan of the pipelined runtime.

    For GAT and MoNet at the published Reddit scale, each (GPU count,
    interconnect) point builds both per-phase timelines through
    :meth:`~repro.session.Session.overlap_schedules` — compute and halo
    exchange on separate per-GPU channels versus the lockstep baseline
    — and reports the phase's makespans, the efficiency ratio, how many
    kernel pairs were co-scheduled (every one certified by
    ``may_overlap``), and the comm channel's busy share.  ``None`` in
    ``interconnect_gbps`` means the default NVLink-class link; the
    narrow link makes the step comm-bound, where pipelining pays most.
    By construction overlapped <= serialized on every row.
    """
    stats = _dataset_stats("reddit-full")
    runs = [
        (_gat_ablation(training=True), "gat-reddit"),
        (_monet_ablation(training=True), "monet-reddit"),
    ]
    cache = PlanCache()
    normalized: List[Dict[str, object]] = []
    for model, workload in runs:
        for gbps in interconnect_gbps:
            for n in num_gpus:
                sess = (
                    Session(cache=cache)
                    .model(model).stats(stats, workload).strategy("ours")
                    .cluster(gpu_name, n, interconnect_gbps=gbps)
                )
                for schedule in sess.overlap_schedules():
                    util = schedule.utilization()
                    comm_busy = max(
                        (
                            frac
                            for group, frac in util.items()
                            if group.endswith(".comm")
                        ),
                        default=0.0,
                    )
                    normalized.append(
                        {
                            "workload": workload,
                            "strategy": "ours",
                            "gpus": n,
                            "interconnect_gbps": gbps,
                            "phase": schedule.phase,
                            "serialized_s": schedule.serialized_makespan_s,
                            "overlapped_s": schedule.overlapped_makespan_s,
                            "overlap_efficiency": schedule.efficiency,
                            "co_scheduled": len(schedule.co_scheduled),
                            "comm_bytes": schedule.comm_bytes,
                            "comm_busy_fraction": comm_busy,
                        }
                    )
    table_rows = [
        [
            r["workload"],
            r["gpus"],
            "nvlink" if r["interconnect_gbps"] is None
            else f"{r['interconnect_gbps']:.0f}GB/s",
            r["phase"],
            f"{r['serialized_s'] * 1e3:.1f}",
            f"{r['overlapped_s'] * 1e3:.1f}",
            f"{r['overlap_efficiency']:.4f}x",
            r["co_scheduled"],
            f"{r['comm_busy_fraction'] * 100:.0f}%",
        ]
        for r in normalized
    ]
    table = format_table(
        ["workload", "gpus", "link", "phase", "serial ms", "overlap ms",
         "efficiency", "pairs", "comm busy"],
        table_rows,
        title=(
            f"overlap-efficiency ({gpu_name} clusters, per-phase "
            "makespans, hash partition)"
        ),
    )
    return FigureResult("overlap-efficiency", [], table, normalized)


# ======================================================================
# Mini-batch IO (sampled-training extension)
# ======================================================================
def fig_minibatch_io(
    batch_sizes: Sequence[Optional[int]] = (None, 4096, 1024, 256),
    *,
    dataset: str = "pubmed",
    hops: int = 2,
    seed: int = 0,
) -> FigureResult:
    """Feature-gather IO vs per-batch memory of sampled training.

    GraphSAGE, full-graph versus sampled mini-batch epochs, under both
    §6 recomputation policies.  Batches are drawn once per batch size
    (seeded) and the *same exact schedule* prices every strategy, so
    rows differ only in the compiled plans.  Qualitative shape:
    shrinking the batch shrinks the per-batch receptive field and with
    it the peak footprint (the device-fit quantity) but inflates epoch
    IO — overlapping fields re-gather shared feature rows — the
    coordinated-tradeoff story of the paper carried into the sampled
    regime, orthogonal to the stash-vs-recompute axis.  Pubmed is the
    default workload because its mean degree (~4.5) leaves 2-hop
    fields genuinely partial; on Reddit-degree graphs the fields
    saturate the whole graph (neighbour explosion) and sampling pays
    the IO tax without any memory win.  Rows land in ``normalized`` as
    dicts keyed by (strategy, batch).
    """
    from repro.graph.sampling import plan_minibatches

    ds = get_dataset(dataset)
    graph = ds.graph()
    stats = ds.stats
    model = GraphSAGE(ds.feature_dim, (128, ds.num_classes))
    gpu = RTX3090
    cache = PlanCache()
    # One exact sampled schedule per batch size, shared across strategies.
    schedules: Dict[int, List] = {}
    for bs in batch_sizes:
        if bs is None:
            continue
        schedules[bs] = [
            (mb.num_seeds, mb.subgraph.stats())
            for mb in plan_minibatches(
                graph, bs, hops, rng=np.random.default_rng(seed)
            )
        ]
    normalized: List[Dict[str, object]] = []
    for strategy in ("ours-stash", "ours"):
        sess = (
            Session(cache=cache)
            .model(model).dataset(dataset).strategy(strategy).gpu(gpu)
        )
        compiled = sess.compile(training=True)
        full = compiled.counters(stats)
        cost = CostModel(gpu)
        for bs in batch_sizes:
            if bs is None:
                normalized.append(
                    {
                        "strategy": strategy,
                        "batch": None,
                        "num_batches": 1,
                        "expansion": 1.0,
                        "gather_bytes": 0,
                        "io_bytes": full.io_bytes,
                        "peak_memory_bytes": full.peak_memory_bytes,
                        "stash_bytes": full.stash_bytes,
                        "latency_s": cost.latency_seconds(full, stats),
                    }
                )
                continue
            mc = compiled.minibatch_counters(
                schedules[bs], num_vertices=stats.num_vertices
            )
            latency = cost.minibatch_latency_seconds(mc)
            normalized.append(
                {
                    "strategy": strategy,
                    "batch": bs,
                    "num_batches": mc.num_batches,
                    "expansion": mc.expansion,
                    "gather_bytes": mc.gather_bytes,
                    "io_bytes": mc.io_bytes,
                    "peak_memory_bytes": mc.peak_memory_bytes,
                    "stash_bytes": mc.stash_bytes,
                    "latency_s": latency,
                }
            )
    table_rows = [
        [
            r["strategy"],
            "full" if r["batch"] is None else str(r["batch"]),
            r["num_batches"],
            f"{r['expansion']:.2f}x",
            f"{r['gather_bytes'] / 2**20:.1f}",
            f"{r['io_bytes'] / 2**20:.1f}",
            f"{r['peak_memory_bytes'] / 2**20:.1f}",
            f"{r['stash_bytes'] / 2**20:.1f}",
            f"{r['latency_s'] * 1e3:.2f}",
        ]
        for r in normalized
    ]
    table = format_table(
        ["strategy", "batch", "batches", "field", "gather MiB",
         "epoch IO MiB", "peak MiB", "stash MiB", "epoch ms"],
        table_rows,
        title=(
            f"minibatch-io (sage on {dataset}, {hops}-hop fields, "
            f"{gpu.name}; epoch totals, per-batch peak)"
        ),
    )
    return FigureResult("minibatch-io", [], table, normalized)


# ======================================================================
# Online serving latency (inference-serving extension)
# ======================================================================
def fig_serving_latency(
    qps_list: Sequence[float] = (500.0, 2000.0, 8000.0, 32000.0),
    *,
    dataset: str = "pubmed",
    model: str = "gat",
    cache_rows_list: Sequence[int] = (0, 8192),
    num_requests: int = 192,
    seeds_per_request: int = 4,
    zipf_alpha: float = 0.9,
    slo_s: float = 0.01,
    seed: int = 0,
) -> FigureResult:
    """Tail latency of online serving across offered load and caching.

    One model served from a fixed-seed Poisson stream (Zipf-skewed seed
    popularity) at several offered loads, with the LRU feature cache
    off and on.  Qualitative shape: at low qps requests eat the
    batcher's ``max_wait`` timeout, at high qps batches fill instantly
    but queueing pushes the tail out; the cache strictly removes
    gather bytes (hit + miss reconcile with the uncached bill exactly)
    and so never makes a batch slower.  The virtual clock is fully
    analytic — ``execute=False`` skips concrete engine runs without
    changing a single metric — which keeps the golden table cheap.
    Rows land in ``normalized`` keyed by (cache_rows, qps).
    """
    cache = PlanCache()
    normalized: List[Dict[str, object]] = []
    for cache_rows in cache_rows_list:
        for qps in qps_list:
            rep = (
                Session(cache=cache)
                .model(model).dataset(dataset).strategy("ours").gpu(RTX3090)
                .serve(
                    num_requests=num_requests,
                    qps=qps,
                    seeds_per_request=seeds_per_request,
                    slo_s=slo_s,
                    zipf_alpha=zipf_alpha,
                    cache_rows=cache_rows,
                    seed=seed,
                    execute=False,
                )
            )
            normalized.append(
                {
                    "cache_rows": cache_rows,
                    "qps": qps,
                    "num_batches": rep.num_batches,
                    "mean_batch_requests": rep.mean_batch_requests,
                    "p50_latency_s": rep.p50_latency_s,
                    "p95_latency_s": rep.p95_latency_s,
                    "p99_latency_s": rep.p99_latency_s,
                    "throughput_rps": rep.throughput_rps,
                    "cache_hit_rate": rep.cache_hit_rate,
                    "gather_miss_bytes": rep.gather_miss_bytes,
                    "uncached_gather_bytes": rep.uncached_gather_bytes,
                    "slo_violation_rate": rep.slo_violation_rate,
                    "utilization": rep.gpu_utilization[0],
                }
            )
    table_rows = [
        [
            str(r["cache_rows"]),
            f"{r['qps']:.0f}",
            r["num_batches"],
            f"{r['mean_batch_requests']:.1f}",
            f"{r['p50_latency_s'] * 1e3:.2f}",
            f"{r['p95_latency_s'] * 1e3:.2f}",
            f"{r['p99_latency_s'] * 1e3:.2f}",
            f"{r['cache_hit_rate'] * 100:.0f}%",
            f"{r['slo_violation_rate'] * 100:.0f}%",
            f"{r['utilization'] * 100:.0f}%",
        ]
        for r in normalized
    ]
    table = format_table(
        ["cache", "qps", "batches", "req/b", "p50 ms", "p95 ms",
         "p99 ms", "hit", "viol", "util"],
        table_rows,
        title=(
            f"serving-latency ({model} on {dataset}, RTX3090, "
            f"{num_requests} Poisson requests, zipf {zipf_alpha}, "
            f"slo {slo_s * 1e3:.0f} ms, edf)"
        ),
    )
    return FigureResult("serving-latency", [], table, normalized)


def fig_dynamic_serving(
    update_fracs: Sequence[float] = (0.0, 0.2, 0.4),
    compact_every_list: Sequence[int] = (1, 4, 16),
    *,
    dataset: str = "pubmed",
    model: str = "gat",
    cache_rows: int = 8192,
    num_requests: int = 128,
    qps: float = 4000.0,
    seeds_per_request: int = 4,
    zipf_alpha: float = 0.9,
    slo_s: float = 0.01,
    new_vertex_prob: float = 0.25,
    seed: int = 0,
) -> FigureResult:
    """Dynamic serving: the update-fraction × compaction-period curve.

    One model serves mixed read/write streams
    (:func:`repro.dyn.mixed_workload`) at a fixed offered load, sweeping
    the write share of the event stream against how often the delta
    overlay is folded into a fresh CSR.  Qualitative shape: a higher
    update fraction invalidates more cached rows (the ``inval`` column
    grows, the hit rate falls) and raises staleness pressure, while a
    shorter compaction period trades pending-overlay size for
    compaction IO — the ``compact`` column bills the full
    read-old + write-new rebuild, so eager compaction dominates the
    mutation ledger.  Answers are exact at every cell: each batch
    observes its dispatch-time snapshot bit-identically to a
    from-scratch rebuild, so only the IO economics move.  The ``0.00``
    row is the static baseline (no updates, compaction moot).
    Rows land in ``normalized`` keyed by (update_frac, compact_every).
    """
    cache = PlanCache()
    normalized: List[Dict[str, object]] = []
    for update_frac in update_fracs:
        periods: Sequence[Optional[int]] = (
            [None] if update_frac == 0.0 else list(compact_every_list)
        )
        for compact_every in periods:
            rep = (
                Session(cache=cache)
                .model(model).dataset(dataset).strategy("ours").gpu(RTX3090)
                .serve(
                    num_requests=num_requests,
                    qps=qps,
                    seeds_per_request=seeds_per_request,
                    slo_s=slo_s,
                    zipf_alpha=zipf_alpha,
                    cache_rows=cache_rows,
                    seed=seed,
                    execute=False,
                    update_frac=update_frac,
                    compact_every=compact_every,
                    new_vertex_prob=new_vertex_prob,
                )
            )
            normalized.append(
                {
                    "update_frac": update_frac,
                    "compact_every": compact_every,
                    "num_batches": rep.num_batches,
                    "p50_latency_s": rep.p50_latency_s,
                    "p99_latency_s": rep.p99_latency_s,
                    "cache_hit_rate": rep.cache_hit_rate,
                    "invalidation_rate": rep.invalidation_rate,
                    "gather_invalidated_bytes": rep.gather_invalidated_bytes,
                    "mean_staleness_s": rep.mean_staleness_s,
                    "graph_version": rep.graph_version,
                    "feature_version": rep.feature_version,
                    "compactions": rep.compactions,
                    "delta_apply_bytes": rep.delta_apply_bytes,
                    "compact_bytes": rep.compact_bytes,
                    "feature_put_bytes": rep.feature_put_bytes,
                    "slo_violation_rate": rep.slo_violation_rate,
                }
            )
    table_rows = [
        [
            f"{r['update_frac']:.2f}",
            "-" if r["compact_every"] is None else str(r["compact_every"]),
            r["num_batches"],
            f"{r['p50_latency_s'] * 1e3:.2f}",
            f"{r['p99_latency_s'] * 1e3:.2f}",
            f"{r['cache_hit_rate'] * 100:.0f}%",
            f"{r['invalidation_rate'] * 100:.1f}%",
            f"{r['mean_staleness_s'] * 1e3:.2f}",
            f"{r['graph_version']}/{r['feature_version']}",
            str(r["compactions"]),
            f"{r['delta_apply_bytes'] / 2**10:.1f}",
            f"{r['compact_bytes'] / 2**20:.1f}",
        ]
        for r in normalized
    ]
    table = format_table(
        ["upd", "compact", "batches", "p50 ms", "p99 ms", "hit",
         "inval", "stale ms", "vG/vF", "folds", "\u0394 KiB", "cmp MiB"],
        table_rows,
        title=(
            f"dynamic-serving ({model} on {dataset}, RTX3090, "
            f"{num_requests} reads at {qps:.0f} qps, zipf {zipf_alpha}, "
            f"{cache_rows} cache rows, edf)"
        ),
    )
    return FigureResult("dynamic-serving", [], table, normalized)


# ======================================================================
# Arena memory planning (peak-aware scheduling extension)
# ======================================================================
def fig_memory_plan(dataset: str = "pubmed") -> FigureResult:
    """Deliverable vs analytic peak of every model under ``ours``.

    For each registered model, one training step on the workload under
    the full unified-fusion + recomputation strategy, three ways of
    pricing its memory:

    - **ledger** — the fresh-storage analytic peak as fusion emitted
      the kernels (max over forward/backward phases),
    - **sched** — the same ledger after the ``schedule_memory`` pass
      reorders kernels for minimum live-byte peak,
    - **arena** — the best-fit slab packing of the scheduled plans'
      boundary values (pinned inputs/parameters live outside it).

    The qualitative shape pinned by the golden table: the arena never
    exceeds the ledger peak, and ``arena + pinned`` — what a runtime
    actually provisions — undercuts the ledger wherever scheduling
    found slack.  Rows land in ``normalized`` keyed by model.
    """
    from repro.registry import MODELS

    cache = PlanCache()
    normalized: List[Dict[str, object]] = []
    for name in sorted(MODELS.names()):
        base = (
            Session(cache=cache)
            .model(name).dataset(dataset).strategy("ours")
        )
        base_counters = base.counters()
        sched = (
            Session(cache=cache)
            .model(name).dataset(dataset).strategy("ours").schedule("memory")
        )
        smp = sched.memory_plan()
        sched_counters = sched.counters()
        normalized.append(
            {
                "workload": name,
                "strategy": "ours",
                "ledger_peak_bytes": base_counters.peak_memory_bytes,
                "sched_peak_bytes": sched_counters.peak_memory_bytes,
                "arena_bytes": smp.arena_bytes,
                "planned_peak_bytes": smp.planned_peak_bytes,
                "pinned_bytes": max(
                    p.pinned_bytes for p in smp.phases()
                ),
                "reuse_factor": smp.reuse_factor,
                "saving": 1.0
                - smp.planned_peak_bytes / base_counters.peak_memory_bytes,
            }
        )
    def _saving(r) -> str:
        percent = r["saving"] * 100
        # Sub-0.05% deltas are slab-alignment noise, not a real change.
        return f"{0.0 if abs(percent) < 0.05 else percent:.1f}%"

    rows = [
        [
            r["workload"],
            f"{r['ledger_peak_bytes'] / 2**20:.2f}",
            f"{r['sched_peak_bytes'] / 2**20:.2f}",
            f"{r['arena_bytes'] / 2**20:.2f}",
            f"{r['planned_peak_bytes'] / 2**20:.2f}",
            f"{r['reuse_factor']:.2f}x",
            _saving(r),
        ]
        for r in normalized
    ]
    table = format_table(
        ["model", "ledger MiB", "sched MiB", "arena MiB",
         "planned MiB", "reuse", "saving"],
        rows,
        title=(
            f"memory-plan (model zoo on {dataset}, ours, one training "
            "step; planned = pinned + arena)"
        ),
    )
    return FigureResult("memory-plan", [], table, normalized)


# ======================================================================
# Static plan analysis (checker inventory extension)
# ======================================================================

#: Strategies swept per model in the static-analysis inventory: the two
#: baseline families, the inference-only configuration, and ``ours``
#: (whose int8 precision variant rides along as a fifth target).
ANALYSIS_STRATEGIES = ("dgl-like", "fuse_all", "huang-like", "ours")


def fig_static_analysis(dataset: str = "cora") -> FigureResult:
    """Checker × model inventory of the static plan analyzer.

    For every registered model, the compiled artifacts of the
    :data:`ANALYSIS_STRATEGIES` configurations (plus ``ours`` at int8
    storage precision) are run through the full
    :class:`~repro.analysis.Analyzer` stack — structure, races, arena,
    precision-flow, halo, partition and differential checkers — and the
    ERROR counts per checker are tabulated.  The golden contract is
    that every cell is zero: the zoo is clean, and any pass or planner
    change that introduces a race, an overlapping slab, a leaked
    logical dtype or a missing halo record flips a cell and fails the
    golden regression.  The target-independent determinism lint of the
    serve/dyn/bench trees is folded into the table title.

    The analyzer's *sensitivity* (that each checker actually kills its
    mutant class) is pinned separately by the ``--self-test`` mutation
    harness; this figure pins the zoo's *cleanliness*.
    """
    from repro.analysis import Analyzer, build_bundle, lint_paths
    from repro.analysis.determinism import default_lint_paths
    from repro.analysis.diagnostics import Severity
    from repro.registry import MODELS

    checker_cols = (
        "structure", "races", "arena", "precision",
        "halo", "partition", "differential",
    )
    cache = PlanCache()
    analyzer = Analyzer()
    normalized: List[Dict[str, object]] = []
    for name in sorted(MODELS.names()):
        counts = {c: 0 for c in checker_cols}
        targets = 0
        kernels = 0
        for strategy in ANALYSIS_STRATEGIES:
            sessions = [
                Session(cache=cache)
                .model(name).dataset(dataset).strategy(strategy)
            ]
            if strategy == "ours":
                sessions.append(
                    Session(cache=cache)
                    .model(name).dataset(dataset).strategy("ours")
                    .precision("int8")
                )
            for session in sessions:
                bundle = build_bundle(session, lint=False)
                report = analyzer.run(bundle)
                targets += 1
                kernels += sum(
                    len(a.plan.kernels) for a in bundle.plans
                )
                for diag in report.errors:
                    if diag.checker in counts:
                        counts[diag.checker] += 1
        row: Dict[str, object] = {
            "workload": name,
            "targets": targets,
            "kernels": kernels,
        }
        row.update(counts)
        row["clean"] = not any(counts.values())
        normalized.append(row)

    lint_errors = sum(
        1 for d in lint_paths(default_lint_paths())
        if d.severity is Severity.ERROR
    )
    rows = [
        [r["workload"], r["targets"], r["kernels"]]
        + [r[c] for c in checker_cols]
        + ["clean" if r["clean"] else "DIRTY"]
        for r in normalized
    ]
    table = format_table(
        ["model", "targets", "kernels"] + list(checker_cols) + ["status"],
        rows,
        title=(
            f"static-analysis (model zoo on {dataset}, "
            f"{'+'.join(ANALYSIS_STRATEGIES)} & ours+int8; ERROR "
            "diagnostics per checker; serve/dyn/bench determinism "
            f"lint: {lint_errors} error(s))"
        ),
    )
    return FigureResult("static-analysis", [], table, normalized)


# ======================================================================
# Mixed-precision IO/memory (dtype-aware accounting extension)
# ======================================================================
def fig_precision_io(dataset: str = "pubmed") -> FigureResult:
    """Feature-gather IO and analytic peak per storage precision.

    For every registered model, the inference plan under ``ours`` is
    compiled at each precision policy and two byte counts are read off
    the analytic ledgers: the full-graph feature-gather bill (vertex
    data inputs at storage width,
    :func:`~repro.exec.analytic.feature_gather_row_bytes` × ``|V|``)
    and the peak resident bytes of the plan walk.  Ratios are against
    the fp32 oracle.

    The shape pinned by the golden table: fp16/bf16 cut both gather IO
    and peak to **exactly half** of fp32 on every model (every float32
    spec halves, and the per-row counts are even), while int8 cuts the
    gather further — ``(f + 4) / 4f`` of fp32, the per-row
    dequantisation scale riding along — but *rebounds* on peak, because
    quantisation compresses only the stored feature rows and every
    dequantised intermediate stays float32.
    """
    from repro.exec.analytic import feature_gather_row_bytes
    from repro.ir.precision import PRECISIONS
    from repro.registry import MODELS

    cache = PlanCache()
    normalized: List[Dict[str, object]] = []
    for name in sorted(MODELS.names()):
        base_gather = base_peak = None
        for prec in PRECISIONS:  # fp32 first: the ratio baseline
            s = (
                Session(cache=cache)
                .model(name).dataset(dataset).strategy("ours")
                .precision(prec)
            )
            stats = s.resolve_stats()
            gather = (
                feature_gather_row_bytes(s.compile_forward().plan)
                * stats.num_vertices
            )
            peak = s.counters(training=False).peak_memory_bytes
            if prec == "fp32":
                base_gather, base_peak = gather, peak
            normalized.append(
                {
                    "workload": name,
                    "precision": prec,
                    "gather_bytes": gather,
                    "gather_ratio": gather / base_gather,
                    "peak_bytes": peak,
                    "peak_ratio": peak / base_peak,
                }
            )
    rows = [
        [
            r["workload"],
            r["precision"],
            f"{r['gather_bytes'] / 2**20:.2f}",
            f"{r['gather_ratio']:.3f}x",
            f"{r['peak_bytes'] / 2**20:.2f}",
            f"{r['peak_ratio']:.3f}x",
        ]
        for r in normalized
    ]
    table = format_table(
        ["model", "prec", "gather MiB", "vs fp32", "peak MiB", "vs fp32"],
        rows,
        title=(
            f"precision-io (model zoo on {dataset}, ours, inference; "
            "feature gather at storage width, analytic peak)"
        ),
    )
    return FigureResult("precision-io", [], table, normalized)


# ======================================================================
# Backend calibration (measured execution extension)
# ======================================================================
def fig_backend_calibration(
    *,
    num_vertices: int = 20000,
    num_edges: int = 400000,
    feat: int = 64,
    repeats: int = 3,
    backends: Optional[Sequence[str]] = None,
    seed: int = 0,
    gpu: Optional[GPUSpec] = None,
) -> FigureResult:
    """Measured vs analytic seconds per kernel class, per backend.

    One GAT training step (forward + backward plans) on a heavy-tailed
    Chung–Lu graph, compiled under ``dgl-like`` — the per-op macro
    strategy, so every gather is a pure segment reduction and all five
    kernel classes appear as separate launches.  Each registered
    backend executes the identical plans through
    :func:`repro.exec.measure.measure_plan` (warmup + median of
    ``repeats``), and rows report per-class measured wall-clock next to
    the analytic roofline prediction and their ratio.

    The ratio column is a *calibration*, not a benchmark: the analytic
    model prices a GPU and the measurement prices this host's NumPy
    substrate, so ratios are large — but they are stable per class, and
    backend-to-backend deltas within a class are pure execution wins
    (the counters are backend-independent by construction).  The shape
    the golden test pins: ``blocked`` strictly beats ``reference`` on
    the gather (segment-reduction) class.
    """
    from dataclasses import replace as _dc_replace

    from repro.exec.analytic import vertex_data_inputs
    from repro.exec.engine import Engine
    from repro.exec.kernel_registry import available_backends
    from repro.exec.measure import MeasuredRun, calibration_rows, measure_plan
    from repro.frameworks import compile_training, get_strategy
    from repro.graph.generators import chung_lu
    from repro.ir.module import GRAPH_CONSTANTS

    graph = chung_lu(num_vertices, num_edges, seed=seed)
    model = GAT(feat, (feat,), heads=1)
    compiled = compile_training(model, get_strategy("dgl-like"))

    rng = np.random.default_rng(seed)
    # Materialise features in the compiled plan's declared storage
    # dtype rather than assuming float32.
    feat_name = vertex_data_inputs(compiled.forward)[0]
    features = rng.standard_normal((num_vertices, feat)).astype(
        compiled.forward.specs[feat_name].concrete_dtype
    )
    arrays = dict(model.make_inputs(graph, features))
    arrays.update(model.init_params(seed))

    # One reference forward supplies the backward plan's stash and the
    # all-ones gradient seeds; every backend then replays both plans on
    # the identical arrays.
    ref = Engine(graph, precision="float32")
    fwd = ref.run_plan(
        compiled.fwd_plan, ref.bind(compiled.forward, arrays), unwrap=False
    )
    bwd_module = compiled.bwd_plan.module
    bwd_arrays: Dict[str, np.ndarray] = {}
    for name in list(bwd_module.inputs) + list(bwd_module.params):
        if name.startswith("grad__"):
            bwd_arrays[name] = np.ones_like(fwd[name[len("grad__"):]])
        elif name in GRAPH_CONSTANTS:
            continue  # bind() synthesises these from the topology
        elif name in fwd:
            bwd_arrays[name] = fwd[name]
        else:
            bwd_arrays[name] = arrays[name]

    names = list(backends) if backends is not None else available_backends()
    offset = len(compiled.fwd_plan.kernels)
    runs: List[MeasuredRun] = []
    for backend in names:
        fwd_run = measure_plan(
            graph, compiled.fwd_plan, arrays,
            backend=backend, repeats=repeats, gpu=gpu,
        )
        bwd_run = measure_plan(
            graph, compiled.bwd_plan, bwd_arrays,
            backend=backend, repeats=repeats, gpu=gpu,
        )
        runs.append(
            MeasuredRun(
                backend=fwd_run.backend,
                gpu=fwd_run.gpu,
                repeats=repeats,
                dtype=fwd_run.dtype,
                timings=fwd_run.timings + [
                    _dc_replace(t, index=t.index + offset)
                    for t in bwd_run.timings
                ],
            )
        )

    normalized: List[Dict[str, object]] = []
    for run in runs:
        measured = run.class_seconds()
        analytic = run.class_analytic_seconds()
        for cls, secs in measured.items():
            normalized.append(
                {
                    "backend": run.backend,
                    "dtype": run.dtype,
                    "kernel_class": cls,
                    "kernels": sum(
                        1 for t in run.timings if t.kernel_class == cls
                    ),
                    "measured_s": secs,
                    "analytic_s": analytic[cls],
                    "ratio": (
                        secs / analytic[cls]
                        if analytic[cls] > 0
                        else float("inf")
                    ),
                }
            )
    table = format_table(
        ["backend", "dtype", "class", "kernels", "measured s",
         "analytic s", "ratio"],
        calibration_rows(runs),
        title=(
            "backend-calibration (gat training step, dgl-like plans, "
            f"V={num_vertices} E={num_edges} f={feat}, "
            f"median of {repeats}; analytic on {runs[0].gpu})"
        ),
    )
    return FigureResult("backend-calibration", [], table, normalized)


# ======================================================================
# Inline §1 statistics
# ======================================================================
def inline_redundant_computation() -> Tuple[float, str]:
    """Share of EdgeConv operator FLOPs that §4 identifies as redundant.

    Paper: 92.4 % of total operators in the EdgeConv (k=40) setting.
    Measured as (naive − reorganized) / naive forward FLOPs.
    """
    stats = _modelnet_stats(64, 40)
    model = EdgeConv(3, (64, 64, 128, 256))
    naive = measure_forward(model, "modelnet", stats, "ours-noreorg", RTX3090)
    opt = measure_forward(model, "modelnet", stats, "ours", RTX3090)
    share = (naive.flops - opt.flops) / naive.flops
    table = format_table(
        ["quantity", "paper", "measured"],
        [["redundant FLOP share (EdgeConv k=40)", "92.4%", f"{share * 100:.1f}%"]],
        title="inline-redundancy",
    )
    return share, table


def inline_intermediate_memory_share() -> Tuple[float, str]:
    """Share of GAT training memory spent on stashed intermediates.

    Paper: 91.9 % of total memory in a GAT model.  Measured on the
    save-everything (DGL-like) configuration at the §7.3 GAT setting, as
    stashed bytes over everything resident when the forward pass hands
    over to backward (inputs + parameters + stash) — the residency that
    training memory is provisioned for.
    """
    stats = _dataset_stats("reddit-full")
    model = _gat_ablation(training=True)
    counters = (
        Session().model(model).stats(stats, "gat-reddit")
        .strategy("dgl-like").counters()
    )
    share = counters.stash_bytes / counters.forward.end_resident_bytes
    table = format_table(
        ["quantity", "paper", "measured"],
        [["intermediate-data memory share (GAT)", "91.9%",
          f"{share * 100:.1f}%"]],
        title="inline-memory-share",
    )
    return share, table
