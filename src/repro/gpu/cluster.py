"""Multi-GPU cluster specs and the partitioned latency model.

A :class:`Cluster` is ``num_gpus`` copies of a registered
:class:`~repro.gpu.spec.GPUSpec` joined by an interconnect
(bandwidth + per-exchange latency).  Clusters carry a ``.name``
(``"V100x4"``) and can be registered on the unified GPU registry like
any single device, so ``Session.gpu("V100x4")`` and ``.cluster("V100",
4)`` are interchangeable.

:class:`ClusterCostModel` extends the single-device roofline to the
partitioned execution model:

- each GPU runs every kernel on its own partition (per-part counters
  from :func:`repro.exec.analytic.analyze_training_multi`) — the step's
  compute time is the **slowest GPU**,
- halo exchanges and gradient all-reduces serialise with compute (the
  bulk-synchronous schedule the paper's systems use): each costs
  ``bytes / interconnect_bandwidth`` plus a fixed latency per exchange,
- per-GPU peak memory is checked against the *single device's* DRAM —
  partitioning is also how a model that OOMs on one board fits on four.

The communication/computation breakdown this produces is the quantity
the scaling experiments report: the comm fraction grows with the GPU
count (cut edges approach ``(P-1)/P`` of all edges while per-GPU
compute shrinks as ``1/P``) until the step goes communication-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.exec.profiler import Counters, MultiGPUCounters
from repro.gpu.cost_model import CostModel, SimulatedOOM
from repro.gpu.spec import GPUSpec, get_gpu
from repro.graph.partition import PartitionStats
from repro.registry import GPUS, register_gpu

__all__ = ["Cluster", "ClusterCostModel", "CommBreakdown", "make_cluster"]


@dataclass(frozen=True)
class Cluster:
    """N identical GPUs joined by an interconnect.

    ``interconnect_gbps`` is the effective per-GPU exchange bandwidth
    in **gigabytes per second** (the same GB/s convention as
    :attr:`GPUSpec.mem_bandwidth_gbps`; NVLink-class by default);
    ``interconnect_latency_us`` is the fixed cost per halo exchange or
    all-reduce round.
    """

    name: str
    gpu: GPUSpec
    num_gpus: int
    interconnect_gbps: float = 64.0
    interconnect_latency_us: float = 5.0

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")

    @property
    def interconnect_bandwidth(self) -> float:
        """Bytes/second."""
        return self.interconnect_gbps * 1e9

    @property
    def interconnect_latency_s(self) -> float:
        return self.interconnect_latency_us * 1e-6

    @property
    def dram_bytes_per_gpu(self) -> int:
        return self.gpu.dram_bytes

    @property
    def total_dram_bytes(self) -> int:
        return self.gpu.dram_bytes * self.num_gpus


def make_cluster(
    gpu: Union[str, GPUSpec],
    num_gpus: int,
    *,
    interconnect_gbps: Optional[float] = None,
    interconnect_latency_us: Optional[float] = None,
    name: Optional[str] = None,
    register: bool = False,
) -> Cluster:
    """Build (and optionally register) ``num_gpus`` copies of a GPU.

    ``gpu`` is a registry name or a spec instance; the cluster is named
    ``"<gpu>x<n>"`` unless overridden.  With ``register=True`` the
    cluster joins the GPU registry so sessions can refer to it by name.
    """
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    if isinstance(spec, Cluster):
        raise TypeError("cannot build a cluster of clusters")
    kwargs = {}
    if interconnect_gbps is not None:
        kwargs["interconnect_gbps"] = interconnect_gbps
    if interconnect_latency_us is not None:
        kwargs["interconnect_latency_us"] = interconnect_latency_us
    cluster = Cluster(
        name=name or f"{spec.name}x{num_gpus}",
        gpu=spec,
        num_gpus=num_gpus,
        **kwargs,
    )
    if register:
        register_gpu(cluster, replace=True)
    return cluster


# ======================================================================
@dataclass(frozen=True)
class CommBreakdown:
    """Communication-vs-computation split of one partitioned step."""

    compute_seconds: float
    comm_seconds: float
    comm_bytes: int
    exchanges: int

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    @property
    def comm_fraction(self) -> float:
        """Share of step time spent on the interconnect."""
        total = self.total_seconds
        return self.comm_seconds / total if total > 0 else 0.0

    @property
    def comm_bound(self) -> bool:
        return self.comm_seconds > self.compute_seconds


@dataclass(frozen=True)
class ClusterCostModel:
    """Latency/memory evaluation of multi-GPU counters on a cluster."""

    cluster: Cluster

    def breakdown(
        self, multi: MultiGPUCounters, pstats: PartitionStats
    ) -> CommBreakdown:
        """Slowest-GPU compute plus serialised interconnect traffic."""
        if multi.num_gpus != self.cluster.num_gpus:
            raise ValueError(
                f"counters describe {multi.num_gpus} GPUs, cluster has "
                f"{self.cluster.num_gpus}"
            )
        device = CostModel(self.cluster.gpu)
        compute = max(
            (
                device.latency_seconds(shard.compute, pstats.parts[p])
                for p, shard in enumerate(multi.per_gpu)
            ),
            default=0.0,
        )
        comm = 0.0
        for shard in multi.per_gpu:
            t = (
                shard.comm_bytes / self.cluster.interconnect_bandwidth
                + shard.exchanges * self.cluster.interconnect_latency_s
            )
            comm = max(comm, t)
        return CommBreakdown(
            compute_seconds=compute,
            comm_seconds=comm,
            comm_bytes=multi.comm_bytes,
            exchanges=max((s.exchanges for s in multi.per_gpu), default=0),
        )

    def latency_seconds(
        self, multi: MultiGPUCounters, pstats: PartitionStats
    ) -> float:
        return self.breakdown(multi, pstats).total_seconds

    # ------------------------------------------------------------------
    def fits(self, multi: MultiGPUCounters) -> bool:
        """Every GPU's partition fits its own DRAM (arena-aware)."""
        return all(
            shard.compute.device_peak_bytes <= self.cluster.dram_bytes_per_gpu
            for shard in multi.per_gpu
        )

    def check_memory(self, multi: MultiGPUCounters) -> None:
        for i, shard in enumerate(multi.per_gpu):
            peak = shard.compute.device_peak_bytes
            if peak > self.cluster.dram_bytes_per_gpu:
                raise SimulatedOOM(
                    peak,
                    self.cluster.dram_bytes_per_gpu,
                    f"{self.cluster.name}[gpu{i}]",
                )
