"""Kernel latency model: counters × device spec → time.

Per-kernel time is a roofline over the exact counters::

    t = launch + max(flops / effective_flops, bytes / effective_bw) × penalties

with three graph-specific penalties:

- **Degree imbalance** (vertex-balanced kernels whose work follows the
  degree distribution): CUDA blocks are dispatched dynamically, so the
  makespan is ``max(ideal, heaviest single block)``; with one block per
  vertex the heaviest block is the max-degree vertex.  The multiplier
  is ``max(1, max_degree × concurrent_blocks / |E|)`` — negligible when
  total work dwarfs the tail (full-size Reddit), punishing on small
  skewed graphs.
- **Atomics** (vertex reductions under edge-balanced mapping,
  Fig. 5(d)): reduction writes are read-modify-write with contention;
  their time is multiplied by ``atomic_overhead``.
- **Shared-memory fusion overhead** (fused ReduceScatter kernels, §5's
  special case): buffering the vertex intermediate costs occupancy;
  compute time is multiplied by ``smem_fusion_overhead``.

Totals are a sequential sum over the stream, matching how the paper's
systems execute.  The model also enforces the device DRAM capacity:
exceeding it raises :class:`SimulatedOOM` — that is the mechanism
behind Figure 11's "DGL cannot run on the RTX 2080".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.exec.profiler import (
    Counters,
    KernelRecord,
    MiniBatchCounters,
    PhaseCounters,
)
from repro.graph.stats import GraphStats
from repro.gpu.spec import GPUSpec

__all__ = ["CostModel", "LatencyBreakdown", "SimulatedOOM"]


class SimulatedOOM(RuntimeError):
    """Peak memory of a plan exceeds the simulated device's DRAM."""

    def __init__(self, required_bytes: int, capacity_bytes: int, device: str):
        self.required_bytes = required_bytes
        self.capacity_bytes = capacity_bytes
        self.device = device
        super().__init__(
            f"simulated OOM on {device}: requires "
            f"{required_bytes / 2**30:.2f} GiB, capacity "
            f"{capacity_bytes / 2**30:.2f} GiB"
        )


@dataclass
class LatencyBreakdown:
    """Per-kernel and aggregate times for one counted run."""

    kernel_seconds: List[float] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(self.kernel_seconds)

    def top(self, n: int = 5) -> List[tuple]:
        order = sorted(
            zip(self.kernel_seconds, self.labels), reverse=True
        )
        return order[:n]


@dataclass(frozen=True)
class CostModel:
    """Latency evaluation of counter records on one device.

    ``neighbor_group_size`` enables the GNNAdvisor-style runtime
    optimization the paper's §8.1 describes: a preprocessing pass splits
    each vertex's edge list into groups of at most this many edges, each
    scheduled as its own block, which caps the serial floor of
    vertex-balanced kernels at the group size (the preprocessing itself
    is a one-time cost outside the steady-state step modelled here).
    """

    spec: GPUSpec
    neighbor_group_size: Optional[int] = None

    # ------------------------------------------------------------------
    def kernel_seconds(self, record: KernelRecord, stats: GraphStats) -> float:
        """Roofline time of one kernel launch."""
        spec = self.spec
        if record.mapping == "none" or (
            record.flops == 0 and record.io_bytes == 0
        ):
            return 0.0
        if record.mapping == "dense":
            t_comp = record.flops / (spec.peak_flops * spec.dense_efficiency)
            t_io = record.io_bytes / (spec.bandwidth * spec.stream_bw_efficiency)
            return spec.kernel_launch_s + max(t_comp, t_io)

        t_comp = record.flops / (
            spec.peak_flops * spec.graph_compute_efficiency
        )
        if record.reduce_scatter:
            t_comp *= spec.smem_fusion_overhead

        bw_eff = (
            spec.gather_bw_efficiency
            if record.mapping in ("edge", "vertex")
            else spec.stream_bw_efficiency
        )
        write_time = record.write_bytes / (spec.bandwidth * bw_eff)
        if record.atomic:
            write_time *= spec.atomic_overhead
        t_io = record.read_bytes / (spec.bandwidth * bw_eff) + write_time

        t = max(t_comp, t_io)
        t *= self.imbalance_factor(record, stats)
        return spec.kernel_launch_s + t

    def imbalance_factor(self, record: KernelRecord, stats: GraphStats) -> float:
        """Makespan inflation of degree-shaped vertex-balanced work.

        With one block per vertex and dynamic dispatch, the per-block
        ideal share is ``|E| / min(|V|, concurrent_blocks)`` (parallelism
        cannot exceed the vertex count), and the serial floor is the
        max-degree vertex.  Regular graphs therefore see factor 1.
        """
        if record.mapping != "vertex" or not record.work.startswith("degree"):
            return 1.0
        max_degree = (
            stats.max_in_degree if record.work == "degree_in" else stats.max_out_degree
        )
        if stats.num_edges == 0:
            return 1.0
        if self.neighbor_group_size is not None:
            # Neighbor grouping splits hub edge lists across blocks,
            # capping any block's serial work at the group size.
            max_degree = min(max_degree, self.neighbor_group_size)
        parallelism = min(stats.num_vertices, self.spec.concurrent_blocks)
        ideal_share = stats.num_edges / max(parallelism, 1)
        return max(1.0, max_degree / ideal_share)

    # ------------------------------------------------------------------
    def phase_latency(
        self, phase: PhaseCounters, stats: GraphStats
    ) -> LatencyBreakdown:
        out = LatencyBreakdown()
        for record in phase.records:
            out.kernel_seconds.append(self.kernel_seconds(record, stats))
            out.labels.append(record.label)
        return out

    def latency_seconds(self, counters: Counters, stats: GraphStats) -> float:
        """End-to-end time of one training/inference step."""
        total = self.phase_latency(counters.forward, stats).total_seconds
        if counters.backward is not None:
            total += self.phase_latency(counters.backward, stats).total_seconds
        return total

    # ------------------------------------------------------------------
    def gather_seconds(self, nbytes: int) -> float:
        """Time to fetch scattered feature rows (random row access).

        Receptive-field gathers touch arbitrary vertex rows, so they
        are priced at the random-access bandwidth fraction
        (``gather_bw_efficiency``), matching how edge/vertex-mapped
        kernel traffic is priced above.
        """
        return nbytes / (self.spec.bandwidth * self.spec.gather_bw_efficiency)

    def minibatch_latency_seconds(self, minibatch: "MiniBatchCounters") -> float:
        """Modelled epoch time of sampled training: per-batch kernel
        rooflines on each batch's own field stats, plus the gather cost
        of fetching each field's feature rows."""
        return sum(
            self.latency_seconds(b.compute, b.stats)
            + self.gather_seconds(b.gather_bytes)
            for b in minibatch.batches
        )

    @staticmethod
    def _device_peak(counters) -> int:
        """Footprint the device must hold.

        Prefers the arena-planned peak (``device_peak_bytes``, set when
        a memory plan backs the run — §6's deliverable peak rather than
        the fresh-storage ledger) and falls back to the ledger peak for
        counter objects that never carry a plan.
        """
        return getattr(
            counters, "device_peak_bytes", counters.peak_memory_bytes
        )

    def check_memory(self, counters: Counters) -> None:
        """Raise :class:`SimulatedOOM` if the run cannot fit in DRAM."""
        peak = self._device_peak(counters)
        if peak > self.spec.dram_bytes:
            raise SimulatedOOM(peak, self.spec.dram_bytes, self.spec.name)

    def fits(self, counters: Counters) -> bool:
        return self._device_peak(counters) <= self.spec.dram_bytes
