"""Device descriptions for the latency model.

Headline numbers are the published specifications of the boards the
paper evaluates on; efficiency factors are modelling choices (fractions
of peak that each kernel class realistically achieves) and are held
constant across devices so that cross-strategy ratios are driven by the
counters, not by tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.registry import GPUS, register_gpu

__all__ = ["GPUSpec", "RTX3090", "RTX2080", "A100", "V100", "get_gpu", "list_gpus"]


@dataclass(frozen=True)
class GPUSpec:
    """One simulated device.

    Attributes
    ----------
    num_sms:
        Streaming multiprocessors; with ``blocks_per_sm`` determines the
        number of concurrently resident thread blocks, which sets the
        degree-imbalance exposure of vertex-balanced kernels.
    peak_fp32_tflops / mem_bandwidth_gbps / dram_gb:
        Published board specs.
    kernel_launch_us:
        Fixed host-side cost per launch, including framework dispatch
        overhead (eager frameworks spend tens of microseconds per
        operator) — the term fusion amortises on small graphs.
    dense_efficiency / graph_compute_efficiency:
        Fraction of peak FLOPs achieved by library GEMMs vs irregular
        graph kernels.
    stream_bw_efficiency / gather_bw_efficiency:
        Fraction of peak bandwidth for streaming vs random access.
    atomic_overhead:
        Multiplier on reduction-write time under edge-balanced mapping.
    smem_fusion_overhead:
        Compute-time multiplier for fused kernels that buffer a vertex
        intermediate in shared memory (ReduceScatter kernels).
    """

    name: str
    num_sms: int
    peak_fp32_tflops: float
    mem_bandwidth_gbps: float
    dram_gb: float
    blocks_per_sm: int = 16
    kernel_launch_us: float = 10.0
    dense_efficiency: float = 0.60
    graph_compute_efficiency: float = 0.06
    stream_bw_efficiency: float = 0.85
    gather_bw_efficiency: float = 0.55
    atomic_overhead: float = 3.0
    smem_fusion_overhead: float = 1.25

    # ------------------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        return self.peak_fp32_tflops * 1e12

    @property
    def bandwidth(self) -> float:
        """Bytes/second."""
        return self.mem_bandwidth_gbps * 1e9

    @property
    def dram_bytes(self) -> int:
        return int(self.dram_gb * (1024 ** 3))

    @property
    def concurrent_blocks(self) -> int:
        return self.num_sms * self.blocks_per_sm

    @property
    def kernel_launch_s(self) -> float:
        return self.kernel_launch_us * 1e-6


RTX3090 = register_gpu(GPUSpec(
    name="RTX3090",
    num_sms=82,
    peak_fp32_tflops=35.6,
    mem_bandwidth_gbps=936.0,
    dram_gb=24.0,
))

RTX2080 = register_gpu(GPUSpec(
    name="RTX2080",
    num_sms=46,
    peak_fp32_tflops=10.1,
    mem_bandwidth_gbps=448.0,
    dram_gb=8.0,
))

A100 = register_gpu(GPUSpec(
    name="A100",
    num_sms=108,
    peak_fp32_tflops=19.5,
    mem_bandwidth_gbps=1555.0,
    dram_gb=40.0,
))

# The workhorse of multi-GPU training clusters (SXM2 32 GB variant);
# the scaling experiments build V100xN clusters from this spec.
V100 = register_gpu(GPUSpec(
    name="V100",
    num_sms=80,
    peak_fp32_tflops=15.7,
    mem_bandwidth_gbps=900.0,
    dram_gb=32.0,
))


def get_gpu(name: str) -> GPUSpec:
    return GPUS.get(name)


def list_gpus() -> list[str]:
    return GPUS.names()
