"""Simulated GPU substrate: device specs and the kernel latency model.

The paper's latency numbers come from real RTX 3090 / RTX 2080 silicon;
this reproduction substitutes an analytical model (DESIGN.md §2):
exact FLOP/byte counters (from :mod:`repro.exec.analytic`) are mapped
to time through a roofline parameterised by published device specs,
with three graph-specific effects layered on top —

1. degree imbalance serialising vertex-balanced kernels (Fig. 5(c)),
2. atomic overhead for vertex reductions under edge-balanced mapping
   (Fig. 5(d)),
3. a shared-memory occupancy penalty for fused ReduceScatter kernels
   (the effect behind §7.3's "fusion has a little negative impact on
   latency" for GAT on Reddit).

Absolute milliseconds are not the claim — ratios between strategies
running identical counters through one device model are.
"""

from repro.gpu.spec import GPUSpec, RTX3090, RTX2080, A100, V100, get_gpu
from repro.gpu.cost_model import (
    CostModel,
    LatencyBreakdown,
    SimulatedOOM,
)
from repro.gpu.cluster import (
    Cluster,
    ClusterCostModel,
    CommBreakdown,
    make_cluster,
)

__all__ = [
    "GPUSpec",
    "RTX3090",
    "RTX2080",
    "A100",
    "V100",
    "get_gpu",
    "CostModel",
    "LatencyBreakdown",
    "SimulatedOOM",
    "Cluster",
    "ClusterCostModel",
    "CommBreakdown",
    "make_cluster",
]
