"""Versioned vertex-feature store with cache-invalidating writes.

Serving keeps hot feature rows in a device-side
:class:`~repro.serve.cache.FeatureCache`; online feature drift (user
embeddings refreshed by an upstream trainer) makes those rows stale.
:class:`FeatureStore` is the host-side source of truth:

- every :meth:`put` bumps the store version, overwrites the rows, and
  invalidates exactly the touched ``(layer, vertex)`` cache entries,
- :meth:`add_vertices` grows the matrix in lockstep with
  :class:`~repro.dyn.delta.GraphDelta` vertex insertions,
- :meth:`snapshot_at` replays the write log onto the version-0 copy —
  the from-scratch reference the differential contract compares cached
  dynamic serving against,
- the write ledger is exact: ``put_bytes``/``grow_bytes`` equal the
  *storage* size of every row written (rows × :attr:`row_bytes`, which
  shrinks with the declared dtype), recomputable from the log.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.ir.precision import simulate_storage
from repro.ir.tensorspec import Domain, TensorSpec

if TYPE_CHECKING:  # runtime import would cycle through repro.serve
    from repro.serve.cache import FeatureCache

__all__ = ["FeatureStore"]


class FeatureStore:
    """Versioned dense vertex-feature matrix.

    Parameters
    ----------
    features:
        The version-0 ``(num_vertices, dim)`` matrix.  Copied: dataset
        feature matrices are module-level-cached and must never be
        mutated in place.
    cache:
        Optional serve-layer :class:`FeatureCache`; each :meth:`put`
        invalidates the written vertices' resident rows in it.
    layer:
        Cache layer key the store's rows live under (the serve path
        gathers input features under layer 0).
    dtype:
        Storage dtype of the rows (defaults to ``float64``, the
        bit-exact reference).  Logical dtypes (``bfloat16``, ``qint8``)
        are accepted: rows are held in the concrete simulation dtype
        while :attr:`row_bytes` and the write ledger charge storage
        width (a qint8 row costs ``dim + 4`` bytes for its scale).
    """

    def __init__(
        self,
        features: np.ndarray,
        *,
        cache: Optional["FeatureCache"] = None,
        layer: int = 0,
        dtype: str = "float64",
    ):
        features = np.asarray(features)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D (vertices, dim) matrix")
        self._spec = TensorSpec(
            Domain.VERTEX, (int(features.shape[1]),), str(dtype)
        )
        features = self._store(features)
        self._base = features.copy()    # version-0 snapshot, never touched
        self._matrix = features.copy()  # current version
        self.cache = cache
        self.layer = layer
        #: Completed writes (each put/grow bumps it by one).
        self.version = 0
        self.put_bytes = 0
        self.grow_bytes = 0
        # ("put", vertices, rows) / ("grow", rows) entries, in version order.
        self._log: List[Tuple[str, np.ndarray, np.ndarray]] = []

    def _store(self, rows: np.ndarray) -> np.ndarray:
        """Round rows through the declared storage dtype (fresh copy)."""
        rows = np.asarray(rows).astype(self._spec.concrete_dtype, copy=True)
        return np.asarray(simulate_storage(self._spec, rows))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return int(self._matrix.shape[0])

    @property
    def dim(self) -> int:
        return int(self._matrix.shape[1])

    @property
    def dtype(self) -> str:
        """Declared storage dtype (possibly logical)."""
        return self._spec.dtype

    @property
    def row_bytes(self) -> int:
        """Storage bytes per row (logical width + quantisation scales)."""
        return self._spec.row_bytes

    @property
    def io_bytes(self) -> int:
        """Total write IO so far (puts + growth)."""
        return self.put_bytes + self.grow_bytes

    @property
    def matrix(self) -> np.ndarray:
        """Read-only view of the current feature matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    def rows(self, vertices: np.ndarray) -> np.ndarray:
        """Current-version gather of ``vertices`` (a fresh copy)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        return self._matrix[vertices].copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeatureStore(num_vertices={self.num_vertices}, "
            f"dim={self.dim}, version={self.version})"
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, vertices: np.ndarray, rows: np.ndarray) -> int:
        """Overwrite feature rows; returns the new store version.

        ``vertices`` must be unique — a batch writing one row twice has
        no well-defined result.  Charges the rows' storage size
        (``rows × row_bytes``) to the write ledger and invalidates the
        touched rows in the attached cache (which attributes their
        eventual re-gather to the invalidated-bytes column, keeping
        ``hit + miss + invalidated == uncached gather bill`` exact).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        rows = self._store(rows)
        if vertices.ndim != 1:
            raise ValueError("vertices must be a 1-D id array")
        if rows.shape != (vertices.size, self.dim):
            raise ValueError(
                f"rows must have shape {(vertices.size, self.dim)}, "
                f"got {rows.shape}"
            )
        if vertices.size == 0:
            raise ValueError("an empty put mutates nothing")
        if vertices.min() < 0 or vertices.max() >= self.num_vertices:
            raise ValueError(
                f"vertex ids must lie in [0, {self.num_vertices})"
            )
        if np.unique(vertices).size != vertices.size:
            raise ValueError("put vertices must be unique within a batch")
        self._matrix[vertices] = rows
        self.version += 1
        self.put_bytes += int(rows.shape[0] * self.row_bytes)
        self._log.append(("put", vertices.copy(), rows.copy()))
        if self.cache is not None:
            self.cache.invalidate(self.layer, vertices)
        return self.version

    def add_vertices(self, rows: np.ndarray) -> int:
        """Append feature rows for newly inserted vertices.

        The new rows take the ids directly above the current vertex
        count, matching :class:`~repro.dyn.delta.GraphDelta` growth.
        Returns the new store version.  Fresh ids cannot be cached yet,
        so no invalidation is needed.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.dim:
            raise ValueError(
                f"rows must be 2-D with dim {self.dim}, got {rows.shape}"
            )
        if rows.shape[0] == 0:
            raise ValueError("an empty growth batch mutates nothing")
        rows = self._store(rows)
        self._matrix = np.concatenate([self._matrix, rows], axis=0)
        self.version += 1
        self.grow_bytes += int(rows.shape[0] * self.row_bytes)
        self._log.append(("grow", np.array([], dtype=np.int64), rows.copy()))
        return self.version

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot_at(self, version: Optional[int] = None) -> np.ndarray:
        """From-scratch rebuild of the matrix at ``version``.

        Replays the write log onto a copy of the version-0 matrix — the
        reference construction for the differential contract.  Defaults
        to the current version (``snapshot_at() == matrix`` bit for
        bit).
        """
        version = self.version if version is None else version
        if not 0 <= version <= self.version:
            raise ValueError(
                f"version must lie in [0, {self.version}], got {version}"
            )
        out = self._base.copy()
        for kind, vertices, rows in self._log[:version]:
            if kind == "put":
                out[vertices] = rows
            else:
                out = np.concatenate([out, rows], axis=0)
        return out
