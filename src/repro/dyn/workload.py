"""Seeded update/read mixed workloads for dynamic serving.

Production GNN serving interleaves reads (inference requests) with
writes: feature drift (user embeddings refreshed upstream) and topology
growth (new interactions, new entities).  This module generates both
sides of that mix from one seeded event stream:

- :class:`UpdateEvent` — one timestamped write: a feature ``put``
  batch, an edge-insertion :class:`~repro.dyn.delta.GraphDelta`, or
  both (a delta whose new vertices arrive with their feature rows),
- :func:`mixed_workload` — a single Poisson event process where each
  event is a write with probability ``update_frac`` and a read
  otherwise; reads are ordinary
  :class:`~repro.serve.request.InferenceRequest` objects, so the
  stream plugs straight into :meth:`InferenceServer.serve`,
- :func:`update_workload` — the write side alone, for replaying
  updates against a fixed request trace.

Hot-vertex skew uses the same Zipf popularity model as the read path
(:func:`~repro.serve.request.zipf_seed_probabilities`), re-derived as
the vertex count grows.  Everything is a pure function of the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dyn.delta import GraphDelta
from repro.serve.request import (
    InferenceRequest,
    _resolve_rng,
    draw_seeds,
    zipf_seed_probabilities,
)

__all__ = ["UpdateEvent", "mixed_workload", "update_workload"]


@dataclass(frozen=True)
class UpdateEvent:
    """One timestamped write against the serving state.

    Attributes
    ----------
    update_id:
        Unique id; ties in ``arrival_s`` break on it, so replay order
        is total and deterministic.
    arrival_s:
        Arrival time on the virtual clock (seconds) — the same clock
        request arrivals live on.
    feature_vertices / feature_rows:
        A :meth:`FeatureStore.put` batch (empty arrays = no put).
    delta:
        A :class:`GraphDelta` edge/vertex insertion batch (``None`` =
        no topology change).
    new_vertex_rows:
        Feature rows for ``delta.num_new_vertices`` freshly inserted
        vertices, applied via :meth:`FeatureStore.add_vertices`.
    """

    update_id: int
    arrival_s: float
    feature_vertices: np.ndarray
    feature_rows: np.ndarray
    delta: Optional[GraphDelta] = None
    new_vertex_rows: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        vertices = np.asarray(self.feature_vertices, dtype=np.int64)
        rows = np.asarray(self.feature_rows, dtype=np.float64)
        if vertices.ndim != 1:
            raise ValueError("feature_vertices must be a 1-D id array")
        if rows.ndim != 2 or rows.shape[0] != vertices.size:
            raise ValueError(
                "feature_rows must be 2-D with one row per feature vertex"
            )
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        new_vertices = (
            self.delta.num_new_vertices if self.delta is not None else 0
        )
        if self.new_vertex_rows is not None:
            nvr = np.asarray(self.new_vertex_rows, dtype=np.float64)
            if nvr.ndim != 2 or nvr.shape[0] != new_vertices:
                raise ValueError(
                    "new_vertex_rows must carry one row per inserted vertex"
                )
            object.__setattr__(self, "new_vertex_rows", nvr)
        elif new_vertices:
            raise ValueError(
                "a delta inserting vertices must supply new_vertex_rows"
            )
        if vertices.size == 0 and self.delta is None:
            raise ValueError("an UpdateEvent must write something")
        object.__setattr__(self, "feature_vertices", vertices)
        object.__setattr__(self, "feature_rows", rows)

    @property
    def num_feature_rows(self) -> int:
        return int(self.feature_vertices.size)

    @property
    def num_edges(self) -> int:
        return self.delta.num_edges if self.delta is not None else 0

    @property
    def num_new_vertices(self) -> int:
        return self.delta.num_new_vertices if self.delta is not None else 0


def _zipf_cache(
    cache: Dict[int, Optional[np.ndarray]],
    num_vertices: int,
    alpha: float,
) -> Optional[np.ndarray]:
    """Popularity vector for the current vertex count, cached per count
    (vertex insertions re-derive it lazily)."""
    if alpha == 0.0:
        return None
    if num_vertices not in cache:
        cache[num_vertices] = zipf_seed_probabilities(num_vertices, alpha)
    return cache[num_vertices]


def _draw_update(
    update_id: int,
    arrival_s: float,
    *,
    num_vertices: int,
    feature_dim: int,
    rng: np.random.Generator,
    zipf_p: Optional[np.ndarray],
    zipf_alpha: float,
    edge_frac: float,
    feature_vertices_per_update: int,
    edges_per_update: int,
    new_vertex_prob: float,
    new_vertices_per_update: int,
) -> UpdateEvent:
    """One write event over the current ``num_vertices`` vertex space."""
    if rng.random() >= edge_frac:
        # Feature drift: refresh rows of (Zipf-)hot vertices.
        k = min(feature_vertices_per_update, num_vertices)
        draws = draw_seeds(
            num_vertices, k, rng=rng, zipf_alpha=zipf_alpha, p=zipf_p
        )
        vertices = np.unique(draws)
        return UpdateEvent(
            update_id=update_id,
            arrival_s=arrival_s,
            feature_vertices=vertices,
            feature_rows=rng.normal(size=(vertices.size, feature_dim)),
        )
    # Topology growth: an edge batch, optionally bringing new vertices.
    new_vertices = (
        new_vertices_per_update
        if new_vertex_prob and rng.random() < new_vertex_prob
        else 0
    )
    grown = num_vertices + new_vertices
    src = draw_seeds(
        num_vertices, edges_per_update, rng=rng,
        zipf_alpha=zipf_alpha, p=zipf_p,
    )
    # Destinations may be brand-new vertices (attachment edges).
    dst = rng.integers(0, grown, size=edges_per_update, dtype=np.int64)
    delta = GraphDelta(src=src, dst=dst, num_new_vertices=new_vertices)
    return UpdateEvent(
        update_id=update_id,
        arrival_s=arrival_s,
        feature_vertices=np.array([], dtype=np.int64),
        feature_rows=np.zeros((0, feature_dim)),
        delta=delta,
        new_vertex_rows=(
            rng.normal(size=(new_vertices, feature_dim))
            if new_vertices
            else None
        ),
    )


def mixed_workload(
    num_requests: int,
    *,
    qps: float,
    num_vertices: int,
    feature_dim: int,
    update_frac: float = 0.2,
    seeds_per_request: int = 1,
    slo_s: float = 0.05,
    tenant: str = "default",
    zipf_alpha: float = 0.0,
    edge_frac: float = 0.5,
    feature_vertices_per_update: int = 8,
    edges_per_update: int = 16,
    new_vertex_prob: float = 0.0,
    new_vertices_per_update: int = 2,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> Tuple[List[InferenceRequest], List[UpdateEvent]]:
    """A mixed read/write stream on one virtual clock.

    Events arrive as a single Poisson process at rate
    ``qps / (1 - update_frac)`` (so *reads* still arrive at ``qps``);
    each event is independently a write with probability
    ``update_frac``.  Writes split ``edge_frac`` topology /
    ``1 - edge_frac`` feature drift; both target (Zipf-)hot vertices
    over the *current* vertex count, which grows as edge batches
    bring ``new_vertices_per_update`` fresh vertices with probability
    ``new_vertex_prob``.  Generation stops once ``num_requests`` reads
    have been emitted.

    Returns ``(requests, updates)`` — both sorted by arrival, ready for
    ``InferenceServer.serve(requests, updates=updates)``.  The whole
    stream is a pure function of ``seed``.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if qps <= 0:
        raise ValueError("qps must be positive")
    if not 0.0 <= update_frac < 1.0:
        raise ValueError("update_frac must lie in [0, 1)")
    if not 0.0 <= edge_frac <= 1.0:
        raise ValueError("edge_frac must lie in [0, 1]")
    if not 0.0 <= new_vertex_prob <= 1.0:
        raise ValueError("new_vertex_prob must lie in [0, 1]")
    rng = _resolve_rng(rng, seed)
    event_rate = qps / (1.0 - update_frac)
    p_cache: Dict[int, Optional[np.ndarray]] = {}
    requests: List[InferenceRequest] = []
    updates: List[UpdateEvent] = []
    live_vertices = num_vertices
    clock = 0.0
    while len(requests) < num_requests:
        clock += float(rng.exponential(1.0 / event_rate))
        if update_frac and rng.random() < update_frac:
            event = _draw_update(
                len(updates),
                clock,
                num_vertices=live_vertices,
                feature_dim=feature_dim,
                rng=rng,
                zipf_p=_zipf_cache(p_cache, live_vertices, zipf_alpha),
                zipf_alpha=zipf_alpha,
                edge_frac=edge_frac,
                feature_vertices_per_update=feature_vertices_per_update,
                edges_per_update=edges_per_update,
                new_vertex_prob=new_vertex_prob,
                new_vertices_per_update=new_vertices_per_update,
            )
            live_vertices += event.num_new_vertices
            updates.append(event)
        else:
            # Reads target the *initial* vertex space: a request for a
            # vertex inserted mid-stream could arrive before its
            # insertion, and the server validates seeds upfront.
            requests.append(
                InferenceRequest(
                    request_id=len(requests),
                    tenant=tenant,
                    seeds=draw_seeds(
                        num_vertices, seeds_per_request, rng=rng,
                        zipf_alpha=zipf_alpha,
                        p=_zipf_cache(p_cache, num_vertices, zipf_alpha),
                    ),
                    arrival_s=clock,
                    slo_s=slo_s,
                )
            )
    return requests, updates


def update_workload(
    num_updates: int,
    *,
    qps: float,
    num_vertices: int,
    feature_dim: int,
    zipf_alpha: float = 0.0,
    edge_frac: float = 0.5,
    feature_vertices_per_update: int = 8,
    edges_per_update: int = 16,
    new_vertex_prob: float = 0.0,
    new_vertices_per_update: int = 2,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> List[UpdateEvent]:
    """The write side alone: Poisson update arrivals at ``qps``.

    Useful for replaying a fixed update stream against an independent
    request trace (e.g. the version-skew tests).  Same knobs and
    determinism contract as :func:`mixed_workload`.
    """
    if num_updates <= 0:
        raise ValueError("num_updates must be positive")
    if qps <= 0:
        raise ValueError("qps must be positive")
    if not 0.0 <= edge_frac <= 1.0:
        raise ValueError("edge_frac must lie in [0, 1]")
    rng = _resolve_rng(rng, seed)
    p_cache: Dict[int, Optional[np.ndarray]] = {}
    arrivals = np.cumsum(rng.exponential(1.0 / qps, size=num_updates))
    updates: List[UpdateEvent] = []
    live_vertices = num_vertices
    for i, t in enumerate(arrivals):
        event = _draw_update(
            i,
            float(t),
            num_vertices=live_vertices,
            feature_dim=feature_dim,
            rng=rng,
            zipf_p=_zipf_cache(p_cache, live_vertices, zipf_alpha),
            zipf_alpha=zipf_alpha,
            edge_frac=edge_frac,
            feature_vertices_per_update=feature_vertices_per_update,
            edges_per_update=edges_per_update,
            new_vertex_prob=new_vertex_prob,
            new_vertices_per_update=new_vertices_per_update,
        )
        live_vertices += event.num_new_vertices
        updates.append(event)
    return updates
