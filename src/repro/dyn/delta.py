"""Incremental CSR deltas: batched insertions over an immutable base.

The library's :class:`~repro.graph.csr.Graph` is deliberately frozen —
every analytic walker and kernel assumes a fixed COO edge-id order.
Production serving breaks that assumption: recommendation and fraud
graphs see continuous edge insertions and new entities.  This module
extends the paper's IO perspective to that read/write mix without
giving up a single exactness contract:

- :class:`GraphDelta` — one batch of vertex/edge insertions,
- :class:`DynamicGraph` — an *overlay* over the last compacted CSR plus
  a pending edge log.  Neighbourhood, degree, and induced-subgraph
  queries are answered delta-aware (base CSR expansion ∪ pending-edge
  expansion) and are **bit-identical** to the same queries on a graph
  rebuilt from scratch at the same version,
- :meth:`DynamicGraph.compact` — folds the pending log into a fresh
  CSR via :meth:`~repro.graph.csr.Graph.with_edges` (the shared,
  validated append path).

Every mutation is charged to an exact analytic IO ledger:

- ``apply`` appends ``(src, dst)`` int64 pairs to the pending log —
  :func:`delta_apply_bytes` = ``16 × num_edges``;
- ``compact`` reads the old COO plus the pending log and writes the new
  COO together with both index structures (CSR and CSC: ``indptr`` +
  edge-id permutation each) — :func:`compact_io_bytes`.

Edge-id discipline: appended edges always take the highest ids in apply
order, so global edge ids are stable across compactions and overlay
induced subgraphs list edges in ascending global edge-id order — the
property that makes serving on a :class:`DynamicGraph` reproduce a
from-scratch rebuild bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import Graph
from repro.graph.sampling import MiniBatch, in_neighbours

__all__ = [
    "GraphDelta",
    "DynamicGraph",
    "ENDPOINT_BYTES",
    "delta_apply_bytes",
    "compact_io_bytes",
]

#: Edge endpoints are int64 everywhere in the library.
ENDPOINT_BYTES = 8


def delta_apply_bytes(num_edges: int) -> int:
    """IO bytes of applying one delta: append ``(src, dst)`` int64
    pairs to the pending edge log.  Vertex insertions are a metadata
    count bump and charge nothing."""
    return 2 * ENDPOINT_BYTES * num_edges


def compact_io_bytes(
    num_vertices: int, csr_edges: int, pending_edges: int
) -> int:
    """IO bytes of one compaction.

    Reads the previous COO (``2 × 8 × csr_edges``) and the pending log
    (``2 × 8 × pending_edges``); writes the merged COO plus both lazily
    consumed index structures — CSR and CSC each need an
    ``indptr`` (``8 × (V + 1)``) and an edge-id permutation
    (``8 × E``).  Exact by construction; the ledger tests recompute
    this closed form from the mutation history.
    """
    total = csr_edges + pending_edges
    read = 2 * ENDPOINT_BYTES * csr_edges + 2 * ENDPOINT_BYTES * pending_edges
    coo_write = 2 * ENDPOINT_BYTES * total
    index_write = 2 * (
        ENDPOINT_BYTES * (num_vertices + 1) + ENDPOINT_BYTES * total
    )
    return read + coo_write + index_write


@dataclass(frozen=True)
class GraphDelta:
    """One batch of graph mutations: new vertices plus inserted edges.

    Attributes
    ----------
    src, dst:
        Endpoint arrays of the inserted edges (may reference the new
        vertex ids, which occupy the ``num_new_vertices`` ids directly
        above the pre-apply vertex count).
    num_new_vertices:
        How many vertices this batch appends.

    A delta is position-independent: endpoint range checks against the
    growing vertex space happen at :meth:`DynamicGraph.apply` time.
    """

    src: np.ndarray
    dst: np.ndarray
    num_new_vertices: int = 0

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=np.int64)
        dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1 or src.shape != dst.shape:
            raise ValueError(
                "delta src and dst must be 1-D arrays of equal length"
            )
        if self.num_new_vertices < 0:
            raise ValueError("num_new_vertices must be non-negative")
        if src.size == 0 and self.num_new_vertices == 0:
            raise ValueError("an empty GraphDelta mutates nothing")
        if src.size and min(src.min(), dst.min()) < 0:
            raise ValueError("delta edge endpoints must be non-negative")
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    @property
    def nbytes(self) -> int:
        """The apply-time IO bill of this batch."""
        return delta_apply_bytes(self.num_edges)


class DynamicGraph:
    """A mutable overlay: last compacted CSR + a pending edge log.

    Queries never materialise the merged graph.  A neighbourhood
    expansion unions the base CSR's in-neighbour gather with the same
    gather over the (much smaller) pending-edge view; an induced
    subgraph masks base and pending edges separately and concatenates
    in global edge-id order.  Both are proven bit-identical to the
    rebuilt-from-scratch graph by the differential suite.

    Parameters
    ----------
    base:
        The version-0 topology (never mutated).
    allow_self_loops / allow_duplicates:
        Validation applied to every :meth:`apply` batch and shared with
        :meth:`compact`'s :meth:`~repro.graph.csr.Graph.with_edges`
        call.  Both default to the library convention (permitted).
    """

    def __init__(
        self,
        base: Graph,
        *,
        allow_self_loops: bool = True,
        allow_duplicates: bool = True,
    ):
        self._base = base
        self._csr = base                      # last compacted CSR
        self._pending_src: List[np.ndarray] = []
        self._pending_dst: List[np.ndarray] = []
        self._pending_edges = 0
        self._num_vertices = base.num_vertices
        self._history: List[GraphDelta] = []  # full mutation history
        self.allow_self_loops = allow_self_loops
        self.allow_duplicates = allow_duplicates
        #: Applied delta batches (the graph version).
        self.version = 0
        self.compactions = 0
        self.apply_bytes = 0
        self.compact_bytes = 0
        # Pending-edge Graph view, invalidated by apply/compact.
        self._overlay: Optional[Graph] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def base(self) -> Graph:
        """The immutable version-0 graph."""
        return self._base

    @property
    def csr(self) -> Graph:
        """The last compacted CSR (== ``base`` before any compaction)."""
        return self._csr

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._csr.num_edges + self._pending_edges

    @property
    def pending_edges(self) -> int:
        """Edges applied since the last compaction (the overlay size)."""
        return self._pending_edges

    @property
    def io_bytes(self) -> int:
        """Total mutation IO so far (delta appends + compactions)."""
        return self.apply_bytes + self.compact_bytes

    @property
    def history(self) -> Tuple[GraphDelta, ...]:
        """Every applied delta, in order (the rebuild recipe)."""
        return tuple(self._history)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, version={self.version}, "
            f"pending={self._pending_edges})"
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> int:
        """Apply one insertion batch; returns the new graph version.

        Validates endpoint ranges against the post-growth vertex space
        and the configured self-loop/duplicate policy, appends the
        edges to the pending log, and charges the exact append bill to
        the ledger (``delta.nbytes``).
        """
        num_vertices = self._num_vertices + delta.num_new_vertices
        src, dst = delta.src, delta.dst
        if src.size:
            hi = max(src.max(), dst.max())
            if hi >= num_vertices:
                raise ValueError(
                    f"delta edge endpoints must lie in [0, {num_vertices}), "
                    f"got max {hi}"
                )
            if not self.allow_self_loops and (src == dst).any():
                raise ValueError(
                    "delta contains self-loops but allow_self_loops=False"
                )
            if not self.allow_duplicates:
                key = src * np.int64(num_vertices) + dst
                if np.unique(key).size != key.size:
                    raise ValueError(
                        "delta duplicates edges within the batch but "
                        "allow_duplicates=False"
                    )
                existing = [
                    self._csr.src * np.int64(num_vertices) + self._csr.dst
                ] + [
                    s * np.int64(num_vertices) + d
                    for s, d in zip(self._pending_src, self._pending_dst)
                ]
                if np.isin(key, np.concatenate(existing)).any():
                    raise ValueError(
                        "delta duplicates existing edges but "
                        "allow_duplicates=False"
                    )
        self._num_vertices = num_vertices
        if src.size:
            self._pending_src.append(src)
            self._pending_dst.append(dst)
            self._pending_edges += src.size
            self._overlay = None
        self._history.append(delta)
        self.version += 1
        self.apply_bytes += delta.nbytes
        return self.version

    def compact(self) -> Graph:
        """Fold the pending log into a fresh CSR; returns it.

        The merge goes through :meth:`Graph.with_edges` (the shared
        append path), so pending edges keep their global edge ids —
        queries before and after a compaction are indistinguishable.
        Charges the exact read-old + read-log + write-new bill
        (:func:`compact_io_bytes`).  A compaction with nothing pending
        is a free no-op.
        """
        grown = self._num_vertices - self._csr.num_vertices
        if self._pending_edges == 0 and grown == 0:
            return self._csr
        old_edges = self._csr.num_edges
        src = (
            np.concatenate(self._pending_src)
            if self._pending_src
            else np.array([], dtype=np.int64)
        )
        dst = (
            np.concatenate(self._pending_dst)
            if self._pending_dst
            else np.array([], dtype=np.int64)
        )
        # Pending batches were validated at apply time; with_edges
        # re-checks ranges and re-applies the configured policy so the
        # two paths can never drift.
        self._csr = self._csr.with_edges(
            src,
            dst,
            num_new_vertices=grown,
            allow_self_loops=self.allow_self_loops,
            allow_duplicates=self.allow_duplicates,
        )
        self._pending_src = []
        self._pending_dst = []
        self._pending_edges = 0
        self._overlay = None
        self.compactions += 1
        self.compact_bytes += compact_io_bytes(
            self._num_vertices, old_edges, int(src.size)
        )
        return self._csr

    # ------------------------------------------------------------------
    # Delta-aware queries
    # ------------------------------------------------------------------
    def _pending_graph(self) -> Optional[Graph]:
        """The pending edges as a Graph over the current vertex space."""
        if self._pending_edges == 0:
            return None
        if self._overlay is None or (
            self._overlay.num_vertices != self._num_vertices
        ):
            self._overlay = Graph(
                np.concatenate(self._pending_src),
                np.concatenate(self._pending_dst),
                self._num_vertices,
            )
        return self._overlay

    @property
    def in_degrees(self) -> np.ndarray:
        """Delta-aware in-degrees over the current vertex space."""
        deg = np.zeros(self._num_vertices, dtype=np.int64)
        deg[: self._csr.num_vertices] = self._csr.in_degrees
        overlay = self._pending_graph()
        if overlay is not None:
            deg += overlay.in_degrees
        return deg

    @property
    def out_degrees(self) -> np.ndarray:
        """Delta-aware out-degrees over the current vertex space."""
        deg = np.zeros(self._num_vertices, dtype=np.int64)
        deg[: self._csr.num_vertices] = self._csr.out_degrees
        overlay = self._pending_graph()
        if overlay is not None:
            deg += overlay.out_degrees
        return deg

    def neighborhood(self, seeds: np.ndarray, hops: int) -> np.ndarray:
        """Delta-aware receptive field (sorted vertex ids).

        Each expansion hop unions the base-CSR in-neighbour gather
        (over frontier vertices the CSR knows) with the same gather
        over the pending-edge view — exactly the in-neighbours of the
        merged graph, without materialising it.
        """
        if hops < 0:
            raise ValueError("hops must be non-negative")
        frontier = np.unique(np.asarray(seeds, dtype=np.int64))
        if frontier.size and (
            frontier.min() < 0 or frontier.max() >= self._num_vertices
        ):
            raise ValueError("seed ids out of range")
        visited = np.zeros(self._num_vertices, dtype=bool)
        visited[frontier] = True
        overlay = self._pending_graph()
        csr = self._csr
        for _ in range(hops):
            if frontier.size == 0:
                break
            parts = []
            known = frontier[frontier < csr.num_vertices]
            if known.size:
                parts.append(in_neighbours(csr, known))
            if overlay is not None:
                parts.append(in_neighbours(overlay, frontier))
            if not parts:
                break
            neighbours = (
                np.unique(np.concatenate(parts))
                if len(parts) > 1
                else parts[0]
            )
            if neighbours.size == 0:
                break
            fresh = neighbours[~visited[neighbours]]
            visited[fresh] = True
            frontier = fresh
        return np.nonzero(visited)[0].astype(np.int64)

    def induce(
        self, vertices: np.ndarray
    ) -> Tuple[Graph, np.ndarray, np.ndarray]:
        """Overlay induced subgraph: ``(subgraph, kept, global eids)``.

        Same contract as :func:`~repro.graph.sampling.induced_subgraph`
        on the rebuilt graph: kept edges appear in ascending *global*
        edge-id order (compacted CSR edges first, then pending edges in
        apply order), so per-destination reduction order — and thus
        every engine output — matches the from-scratch rebuild bit for
        bit.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.ndim != 1:
            raise ValueError("vertices must be a 1-D id array")
        if vertices.size == 0:
            raise ValueError(
                "induce: empty vertex set — a Graph must have "
                "num_vertices > 0"
            )
        if vertices.min() < 0 or vertices.max() >= self._num_vertices:
            raise ValueError("vertex ids out of range")
        kept = np.asarray(
            list(dict.fromkeys(vertices.tolist())), dtype=np.int64
        )
        new_id = np.full(self._num_vertices, -1, dtype=np.int64)
        new_id[kept] = np.arange(kept.size)
        csr = self._csr
        mask = (new_id[csr.src] >= 0) & (new_id[csr.dst] >= 0)
        base_eids = np.nonzero(mask)[0].astype(np.int64)
        sub_src = [new_id[csr.src[base_eids]]]
        sub_dst = [new_id[csr.dst[base_eids]]]
        eids = [base_eids]
        overlay = self._pending_graph()
        if overlay is not None:
            pmask = (new_id[overlay.src] >= 0) & (new_id[overlay.dst] >= 0)
            pend_eids = np.nonzero(pmask)[0].astype(np.int64)
            sub_src.append(new_id[overlay.src[pend_eids]])
            sub_dst.append(new_id[overlay.dst[pend_eids]])
            eids.append(pend_eids + csr.num_edges)
        sub = Graph(
            np.concatenate(sub_src), np.concatenate(sub_dst), int(kept.size)
        )
        return sub, kept, np.concatenate(eids)

    def receptive_field(self, seeds: np.ndarray, hops: int) -> MiniBatch:
        """Delta-aware twin of :func:`repro.serve.batcher.receptive_field`.

        Sorted unique seeds → overlay k-hop field → overlay induced
        subgraph; the returned :class:`MiniBatch` is interchangeable
        with one built on the rebuilt graph.
        """
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        field = self.neighborhood(seeds, hops)
        sub, kept, eids = self.induce(field)
        # kept is sorted (neighborhood output), so bisect for positions.
        seed_index = np.searchsorted(kept, seeds)
        return MiniBatch(
            seeds=seeds,
            vertices=kept,
            subgraph=sub,
            edge_ids=eids,
            seed_index=seed_index,
        )

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def as_graph(self) -> Graph:
        """Materialise the current version (CSR + pending), uncharged.

        A convenience for tests and one-shot consumers; unlike
        :meth:`compact` it neither resets the pending log nor touches
        the IO ledger.
        """
        if self._pending_edges == 0:
            grown = self._num_vertices - self._csr.num_vertices
            if grown == 0:
                return self._csr
            return self._csr.with_edges(
                np.array([], dtype=np.int64),
                np.array([], dtype=np.int64),
                num_new_vertices=grown,
            )
        return self._csr.with_edges(
            np.concatenate(self._pending_src),
            np.concatenate(self._pending_dst),
            num_new_vertices=self._num_vertices - self._csr.num_vertices,
        )

    def rebuild(self, version: Optional[int] = None) -> Graph:
        """From-scratch rebuild of the graph at ``version`` (default:
        current).

        Replays the delta history onto the version-0 base in one
        :meth:`Graph.with_edges` append — the reference construction
        the differential contract compares overlay serving against.
        """
        version = self.version if version is None else version
        if not 0 <= version <= self.version:
            raise ValueError(
                f"version must lie in [0, {self.version}], got {version}"
            )
        deltas = self._history[:version]
        if not deltas:
            return self._base
        src = np.concatenate([d.src for d in deltas])
        dst = np.concatenate([d.dst for d in deltas])
        grown = sum(d.num_new_vertices for d in deltas)
        return self._base.with_edges(src, dst, num_new_vertices=grown)
