"""Dynamic graphs: incremental CSR deltas, versioned features, workloads.

Extends the analytic IO perspective to a read/write serving mix:

- :mod:`repro.dyn.delta` — :class:`GraphDelta` insertion batches and the
  :class:`DynamicGraph` overlay (delta-aware queries, periodic
  compaction, exact mutation IO ledger),
- :mod:`repro.dyn.featurestore` — the versioned :class:`FeatureStore`
  whose version bumps drive serve-cache invalidation with exact
  invalidation-byte accounting,
- :mod:`repro.dyn.workload` — seeded update/read mixed-workload
  generators (:func:`mixed_workload`, :func:`update_workload`).
"""

from repro.dyn.delta import (
    DynamicGraph,
    GraphDelta,
    compact_io_bytes,
    delta_apply_bytes,
)
from repro.dyn.featurestore import FeatureStore
from repro.dyn.workload import UpdateEvent, mixed_workload, update_workload

__all__ = [
    "DynamicGraph",
    "GraphDelta",
    "FeatureStore",
    "UpdateEvent",
    "mixed_workload",
    "update_workload",
    "compact_io_bytes",
    "delta_apply_bytes",
]
