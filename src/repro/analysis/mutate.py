"""Seeded corruption harness: mutation testing of the static analyzer.

A checker that has never caught a bug is indistinguishable from a
checker that cannot.  This module manufactures the bugs: each *mutant*
applies one seeded corruption to a freshly built artifact bundle —
exactly the class of defect its checker exists to catch — and
:func:`self_test` asserts the checker kills it (reports an ERROR with
the expected code) while the uncorrupted bundle stays clean.

=================  ==========  ======  ===============================
Mutant             Checker     Kills   Corruption
=================  ==========  ======  ===============================
``swap_kernels``   races       RP101   invert a RAW-dependent kernel
                                       pair in the proposed order
``forge_overlap``  races       RP105   slide a recorded overlap-
                                       schedule slot onto a
                                       conflicting kernel's wall time
``shrink_slab``    arena       RP202   halve the largest slab's extent
``overlap_slab``   arena       RP201   slide a slab onto a live
                                       neighbour's bytes
``drop_slab``      arena       RP205   delete a slab outright
``leak_qint8``     precision   RP301   re-dtype a derived value qint8
``drop_comm``      halo        RP401   delete one analytic CommRecord
``dup_comm``       halo        RP402   duplicate one CommRecord
``global_rng``     determin.   RP501   inject np.random.rand() source
``wallclock``      determin.   RP503   inject time.time() source
=================  ==========  ======  ===============================

Every mutation works on a deep copy of the bundle, so the plan cache's
shared artifacts are never corrupted.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.analysis.analyzer import Analyzer, ArtifactBundle
from repro.analysis.races import conflicts

__all__ = ["MUTANTS", "Mutant", "MutationOutcome", "run_mutant", "self_test"]


@dataclass(frozen=True)
class Mutant:
    """One named corruption and the diagnostic that must kill it."""

    name: str
    checker: str
    expected_code: str
    apply: Callable[[ArtifactBundle], ArtifactBundle]
    description: str


@dataclass
class MutationOutcome:
    mutant: Mutant
    killed: bool
    codes_seen: Tuple[str, ...]

    def render(self) -> str:
        status = "killed" if self.killed else "SURVIVED"
        return (
            f"{self.mutant.name:<14} {self.mutant.checker:<12} "
            f"expect {self.mutant.expected_code}  {status}  "
            f"(saw {', '.join(self.codes_seen) or 'nothing'})"
        )


# ----------------------------------------------------------------------
# Corruptions.  Each takes a private deep copy and returns it mutated.
# ----------------------------------------------------------------------
def _raw_pair(plan) -> Optional[Tuple[int, int]]:
    """First (producer, consumer) kernel pair with a value hazard."""
    n = len(plan.kernels)
    for j in range(n):
        for i in range(j):
            if conflicts(plan, i, j):
                return i, j
    return None


def _swap_kernels(bundle: ArtifactBundle) -> ArtifactBundle:
    for artifact in bundle.plans:
        pair = _raw_pair(artifact.plan)
        if pair is None:
            continue
        i, j = pair
        order = list(range(len(artifact.plan.kernels)))
        order[i], order[j] = order[j], order[i]
        artifact.proposed_order = order
        return bundle
    raise ValueError("no RAW-dependent kernel pair to swap in any phase")


def _forge_overlap(bundle: ArtifactBundle) -> ArtifactBundle:
    """Make a recorded schedule co-run a hazard pair in wall time."""
    for artifact in bundle.plans:
        schedule = artifact.overlap_schedule
        if schedule is None:
            continue
        pair = _raw_pair(artifact.plan)
        if pair is None:
            continue
        i, j = pair
        a = schedule.slots[("compute", i, 0)]
        b = schedule.slots[("compute", j, 0)]
        width = max(b.finish_s - b.start_s, a.finish_s - a.start_s, 1e-9)
        schedule.slots[("compute", j, 0)] = replace(
            b, start_s=a.start_s, finish_s=a.start_s + width
        )
        return bundle
    raise ValueError(
        "no recorded overlap schedule with a conflicting kernel pair"
    )


def _arena_artifact(bundle: ArtifactBundle):
    for artifact in bundle.plans:
        if artifact.memory_plan is not None and artifact.memory_plan.slabs:
            return artifact
    raise ValueError("bundle has no arena memory plan to corrupt")


def _shrink_slab(bundle: ArtifactBundle) -> ArtifactBundle:
    mp = _arena_artifact(bundle).memory_plan
    name, slab = max(mp.slabs.items(), key=lambda kv: (kv[1].size, kv[0]))
    mp.slabs[name] = replace(slab, size=max(slab.size // 2, 0))
    return bundle


def _overlap_slab(bundle: ArtifactBundle) -> ArtifactBundle:
    mp = _arena_artifact(bundle).memory_plan
    slabs = sorted(mp.slabs.values(), key=lambda s: (s.birth, s.offset, s.name))
    for i, s1 in enumerate(slabs):
        for s2 in slabs[i + 1 :]:
            if s1.name != s2.name and s1.overlaps(s2):
                # Simultaneously live (so placed on disjoint bytes):
                # slide s2 onto s1's bytes.
                mp.slabs[s2.name] = replace(s2, offset=s1.offset)
                return bundle
    raise ValueError("no pair of simultaneously-live slabs to collide")


def _drop_slab(bundle: ArtifactBundle) -> ArtifactBundle:
    mp = _arena_artifact(bundle).memory_plan
    name = max(mp.slabs, key=lambda n: (mp.slabs[n].size, n))
    del mp.slabs[name]
    return bundle


def _leak_qint8(bundle: ArtifactBundle) -> ArtifactBundle:
    for artifact in bundle.plans:
        module = artifact.plan.module
        for node in module.nodes:
            out = node.outputs[0]
            spec = module.specs[out]
            if spec.dtype == "float32":
                module.specs[out] = spec.with_dtype("qint8")
                return bundle
    raise ValueError("no float32 derived value to re-dtype as qint8")


def _halo_records(bundle: ArtifactBundle):
    for phase in sorted(bundle.comm_records):
        per_gpu = bundle.comm_records[phase]
        for p, records in enumerate(per_gpu):
            if records:
                return per_gpu, p
    raise ValueError(
        "bundle schedules no comm records to corrupt (model has no "
        "halo exchanges on this partition)"
    )


def _drop_comm(bundle: ArtifactBundle) -> ArtifactBundle:
    per_gpu, p = _halo_records(bundle)
    per_gpu[p] = per_gpu[p][1:]
    return bundle


def _dup_comm(bundle: ArtifactBundle) -> ArtifactBundle:
    per_gpu, p = _halo_records(bundle)
    per_gpu[p] = per_gpu[p] + [per_gpu[p][0]]
    return bundle


_GLOBAL_RNG_SRC = (
    "import numpy as np\n"
    "\n"
    "def jitter(x):\n"
    "    return x + np.random.rand()\n"
)

_WALLCLOCK_SRC = (
    "import time\n"
    "\n"
    "def stamp(row):\n"
    "    row['at'] = time.time()\n"
    "    return row\n"
)


def _global_rng(bundle: ArtifactBundle) -> ArtifactBundle:
    bundle.extra_sources["mutant_rng.py"] = _GLOBAL_RNG_SRC
    return bundle


def _wallclock(bundle: ArtifactBundle) -> ArtifactBundle:
    bundle.extra_sources["mutant_clock.py"] = _WALLCLOCK_SRC
    return bundle


#: The shipped mutant set — one (or more) per checker class.
MUTANTS: Tuple[Mutant, ...] = (
    Mutant("swap_kernels", "races", "RP101", _swap_kernels,
           "invert a RAW-dependent kernel pair in the proposed order"),
    Mutant("forge_overlap", "races", "RP105", _forge_overlap,
           "co-run a conflicting kernel pair in a recorded schedule"),
    Mutant("shrink_slab", "arena", "RP202", _shrink_slab,
           "halve the largest arena slab"),
    Mutant("overlap_slab", "arena", "RP201", _overlap_slab,
           "slide a slab onto a simultaneously-live neighbour"),
    Mutant("drop_slab", "arena", "RP205", _drop_slab,
           "delete a boundary value's slab"),
    Mutant("leak_qint8", "precision", "RP301", _leak_qint8,
           "re-dtype a derived value to qint8"),
    Mutant("drop_comm", "halo", "RP401", _drop_comm,
           "delete one analytic CommRecord"),
    Mutant("dup_comm", "halo", "RP402", _dup_comm,
           "schedule one CommRecord twice"),
    Mutant("global_rng", "determinism", "RP501", _global_rng,
           "inject np.random.rand() into a linted source"),
    Mutant("wallclock", "determinism", "RP503", _wallclock,
           "inject time.time() into a linted source"),
)


# ----------------------------------------------------------------------
def run_mutant(
    mutant: Mutant, bundle: ArtifactBundle, analyzer: Optional[Analyzer] = None
) -> MutationOutcome:
    """Corrupt a private copy of ``bundle``; did the checker kill it?"""
    analyzer = analyzer if analyzer is not None else Analyzer()
    mutated = mutant.apply(copy.deepcopy(bundle))
    report = analyzer.run(mutated)
    codes = tuple(report.codes())
    return MutationOutcome(
        mutant=mutant,
        killed=mutant.expected_code in {d.code for d in report.errors},
        codes_seen=codes,
    )


def self_test(
    bundle: ArtifactBundle, *, analyzer: Optional[Analyzer] = None
) -> List[MutationOutcome]:
    """Run every mutant against ``bundle``; raise unless all are killed.

    Also asserts the *unmutated* bundle analyzes clean — a harness that
    passes on an already-broken bundle proves nothing.
    """
    analyzer = analyzer if analyzer is not None else Analyzer()
    clean = analyzer.run(copy.deepcopy(bundle))
    if not clean.ok:
        raise AssertionError(
            "mutation self-test needs a clean baseline bundle; got:\n"
            + clean.summary()
        )
    outcomes = [run_mutant(m, bundle, analyzer) for m in MUTANTS]
    survivors = [o for o in outcomes if not o.killed]
    if survivors:
        lines = "\n".join("  " + o.render() for o in survivors)
        raise AssertionError(
            f"{len(survivors)} mutant(s) survived the analyzer:\n{lines}"
        )
    return outcomes
