"""Diagnostic vocabulary of the static plan analyzer.

Every invariant the analyzer proves (or refutes) reports through one
:class:`Diagnostic` shape: a **stable code** (``RPxyz`` — the leading
digit names the checker family, the trailing digits the specific
violation), a severity, a human-readable message, and a
:class:`SourceLocation` pointing into the artifact that violated the
invariant — a kernel index inside a plan, a value name inside a module,
a slab inside a memory plan, a GPU inside a partition, or a file/line
for source-level lints.

Codes are API: tests, CI gates, and downstream tooling key on them, so
a code is never renumbered or reused once shipped.  The full inventory
lives in :data:`CODES`; :func:`describe_code` resolves one.

========  ============================================================
Family    Checker
========  ============================================================
``RP0xx`` structural IR validation (migrated ``validate_module``)
``RP1xx`` kernel race detection / schedule legality
``RP2xx`` arena-overlap and memory-watermark checking
``RP3xx`` precision flow (logical dtypes, fp32 accumulation)
``RP4xx`` halo/communication consistency (multi-GPU)
``RP5xx`` determinism lint (RNG and wall-clock hygiene)
``RP6xx`` graph-partition invariants (migrated ``validate``)
``RP7xx`` differential plan equivalence (``verify_plan`` shim)
========  ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "SourceLocation",
    "Diagnostic",
    "AnalysisReport",
    "CODES",
    "describe_code",
]


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` — the invariant is violated; executing the artifact can
    produce wrong values, corrupt memory, or diverge between runs.
    ``WARNING`` — legal but suspicious (e.g. a provably-dead exchange).
    ``INFO`` — advisory facts (e.g. overlap opportunities).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __lt__(self, other: "Severity") -> bool:
        order = {"error": 0, "warning": 1, "info": 2}
        return order[self.value] < order[other.value]


#: code -> (checker family, one-line description).  Append-only.
CODES: Dict[str, Tuple[str, str]] = {
    # -- RP0xx: structural IR validation -------------------------------
    "RP001": ("structure", "interface value has no spec"),
    "RP002": ("structure", "duplicate definition of a value"),
    "RP003": ("structure", "value used before definition"),
    "RP004": ("structure", "node fails shape/domain re-inference"),
    "RP005": ("structure", "recorded spec disagrees with inference"),
    "RP006": ("structure", "module output is never defined"),
    "RP007": ("structure", "spec recorded for an undefined value"),
    "RP008": ("structure", "param is not PARAM domain"),
    "RP009": ("structure", "graph constant carries the wrong spec"),
    "RP010": ("structure", "node output missing from specs"),
    # -- RP1xx: kernel races / schedule legality -----------------------
    "RP101": ("races", "proposed order breaks a RAW dependence"),
    "RP102": ("races", "parallel overlap of conflicting kernels"),
    "RP103": ("races", "proposed order is not a permutation of the plan"),
    "RP104": ("races", "slab-sharing kernels reordered against reuse"),
    "RP105": ("races", "recorded overlap schedule co-runs conflicting kernels"),
    # -- RP2xx: arena overlap / memory watermarks ----------------------
    "RP201": ("arena", "lifetime-overlapping slabs intersect in bytes"),
    "RP202": ("arena", "slab smaller than the value it must hold"),
    "RP203": ("arena", "slab extends past the declared arena extent"),
    "RP204": ("arena", "recorded ledger peak disagrees with the walk"),
    "RP205": ("arena", "boundary value has no slab and is not pinned"),
    "RP206": ("arena", "planned watermark exceeds the ledger peak"),
    # -- RP3xx: precision flow -----------------------------------------
    "RP301": ("precision", "quantized dtype on a derived/non-input value"),
    "RP302": ("precision", "logical dtype placed on an arena slab"),
    "RP303": ("precision", "reduction without an fp32-accumulation rule"),
    "RP304": ("precision", "dtype changes across a view alias"),
    # -- RP4xx: halo consistency ---------------------------------------
    "RP401": ("halo", "ghost read not covered by a comm record"),
    "RP402": ("halo", "ghost read covered by more than one comm record"),
    "RP403": ("halo", "comm record bytes disagree with the halo extent"),
    "RP404": ("halo", "comm record matches no ghost read (spurious)"),
    # -- RP5xx: determinism lint ---------------------------------------
    "RP501": ("determinism", "global NumPy RNG state used"),
    "RP502": ("determinism", "default_rng() without an explicit seed"),
    "RP503": ("determinism", "wall-clock read outside measure.py"),
    "RP504": ("determinism", "random module used instead of seeded Generator"),
    # -- RP6xx: partition invariants -----------------------------------
    "RP601": ("partition", "assignment does not cover every vertex"),
    "RP602": ("partition", "assignment value out of part range"),
    "RP603": ("partition", "owned vertex sets do not tile the graph"),
    "RP604": ("partition", "owned edge sets do not tile the edge set"),
    # -- RP7xx: differential plan equivalence --------------------------
    "RP701": ("differential", "plan output diverges from per-op reference"),
}


def describe_code(code: str) -> str:
    """One-line description of a stable diagnostic code."""
    family, text = CODES[code]
    return f"{code} [{family}] {text}"


@dataclass(frozen=True)
class SourceLocation:
    """Where inside the analyzed artifact a finding points.

    All fields are optional — a race points at ``(plan, kernels)``, a
    spec leak at ``value``, a lint hit at ``(file, line)``.  ``phase``
    distinguishes forward/backward plans of one compiled step.
    """

    phase: Optional[str] = None
    kernel: Optional[int] = None
    kernel2: Optional[int] = None
    value: Optional[str] = None
    gpu: Optional[int] = None
    file: Optional[str] = None
    line: Optional[int] = None

    def __str__(self) -> str:
        parts: List[str] = []
        if self.file is not None:
            parts.append(
                f"{self.file}:{self.line}" if self.line is not None else self.file
            )
        if self.phase is not None:
            parts.append(self.phase)
        if self.kernel is not None:
            k = f"kernel {self.kernel}"
            if self.kernel2 is not None:
                k += f"<->{self.kernel2}"
            parts.append(k)
        if self.value is not None:
            parts.append(f"value {self.value!r}")
        if self.gpu is not None:
            parts.append(f"gpu {self.gpu}")
        return ":".join(parts) if parts else "<artifact>"


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding with a stable code."""

    code: str
    severity: Severity
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    checker: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(
                f"unknown diagnostic code {self.code!r}; stable codes must "
                "be registered in repro.analysis.diagnostics.CODES"
            )
        if not self.checker:
            object.__setattr__(self, "checker", CODES[self.code][0])

    def render(self) -> str:
        return (
            f"{self.code} {self.severity.value:<7} {self.location}: "
            f"{self.message}"
        )


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced over one artifact bundle.

    ``ok`` holds when no ERROR-severity diagnostic was reported;
    warnings and infos never gate.  ``checkers_run`` records coverage —
    a checker that had nothing to analyze (e.g. halo checks on a
    single-GPU bundle with no partition) still counts as *run* with an
    empty scope, so "clean" is never silence-by-skipping.
    """

    target: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    checkers_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def summary(self) -> str:
        head = (
            f"{self.target}: "
            f"{len(self.errors)} error(s), "
            f"{sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)}"
            f" warning(s) from {len(self.checkers_run)} checker(s)"
        )
        lines = [head]
        for d in sorted(self.diagnostics, key=lambda d: (d.severity, d.code)):
            lines.append("  " + d.render())
        return "\n".join(lines)


def sort_diagnostics(diags: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Stable severity-then-code ordering used by reports."""
    return sorted(diags, key=lambda d: (d.severity, d.code, str(d.location)))
