"""Kernel race detection: happens-before from read/write/alias sets.

An :class:`~repro.exec.plan.ExecPlan` emits kernels in one legal order,
but both the memory scheduler (:mod:`repro.opt.schedule`) and the
ROADMAP's future async executor want to run them in *other* orders — or
concurrently.  This module is the single authority on when that is
sound:

- at the **value** level the IR is SSA (every root written by exactly
  one kernel), so the only native hazard is RAW: a consumer must follow
  its producer;
- at the **storage** level an arena :class:`~repro.exec.memory
  .MemoryPlan` deliberately recycles bytes between lifetime-disjoint
  roots, which manufactures WAR/WAW hazards: the kernel that redefines a
  slab's bytes must stay after every reader of the previous tenant.

:func:`may_overlap` is the API the async executor must consult before
overlapping two kernels; :func:`check_order` is what the scheduler (and
any pass proposing a reordering) must call, returning RP1xx diagnostics
naming the exact conflicting kernel pairs and the resource they race on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, SourceLocation
from repro.exec.plan import ExecPlan

__all__ = [
    "KernelAccess",
    "Conflict",
    "kernel_access",
    "conflicts",
    "happens_before",
    "may_overlap",
    "check_order",
    "check_overlap_schedule",
    "overlap_diagnostics",
    "RaceChecker",
]


@dataclass(frozen=True)
class KernelAccess:
    """Storage roots one kernel touches at its boundary (views resolved)."""

    reads: FrozenSet[str]
    writes: FrozenSet[str]


@dataclass(frozen=True)
class Conflict:
    """One hazard between an (earlier, later) kernel pair.

    ``kind`` is ``"RAW"``/``"WAR"``/``"WAW"`` assuming the first kernel
    executes before the second; ``resource`` names the value root (value
    hazards) or ``"slab:<r1>|<r2>"`` (storage hazards through arena
    byte reuse).
    """

    kind: str
    resource: str


def kernel_access(plan: ExecPlan, index: int) -> KernelAccess:
    """Boundary read/write root sets of kernel ``index``."""
    io = plan.kernel_io(index)
    return KernelAccess(
        reads=frozenset(plan.root_of(r) for r in io.reads),
        writes=frozenset(plan.root_of(w) for w in io.writes),
    )


def _slab_ranges(memory_plan) -> Dict[str, Tuple[int, int]]:
    return {
        name: (slab.offset, slab.offset + slab.size)
        for name, slab in memory_plan.slabs.items()
    }


def _bytes_intersect(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    return a[0] < b[1] and b[0] < a[1]


def conflicts(
    plan: ExecPlan,
    first: int,
    second: int,
    *,
    memory_plan=None,
) -> List[Conflict]:
    """All hazards if kernel ``first`` executes before kernel ``second``.

    Value-level RAW/WAR/WAW on shared roots, plus — when ``memory_plan``
    is given — storage-level hazards between *distinct* roots whose arena
    slabs share bytes.
    """
    a, b = kernel_access(plan, first), kernel_access(plan, second)
    found: List[Conflict] = []
    for root in sorted(a.writes & b.reads):
        found.append(Conflict("RAW", root))
    for root in sorted(a.reads & b.writes):
        found.append(Conflict("WAR", root))
    for root in sorted(a.writes & b.writes):
        found.append(Conflict("WAW", root))
    if memory_plan is not None:
        ranges = _slab_ranges(memory_plan)
        pairs = (
            ("RAW", a.writes, b.reads),
            ("WAR", a.reads, b.writes),
            ("WAW", a.writes, b.writes),
        )
        for kind, first_roots, second_roots in pairs:
            for r1 in sorted(first_roots & set(ranges)):
                for r2 in sorted(second_roots & set(ranges)):
                    if r1 == r2:
                        continue  # same storage already a value hazard
                    if _bytes_intersect(ranges[r1], ranges[r2]):
                        found.append(Conflict(kind, f"slab:{r1}|{r2}"))
    return found


def may_overlap(
    plan: ExecPlan, k1: int, k2: int, *, memory_plan=None
) -> bool:
    """May kernels ``k1`` and ``k2`` run concurrently?

    True exactly when the pair shares no storage with at least one
    writer in either direction — the contract the async executor must
    consult before overlapping two launches.
    """
    return not conflicts(plan, k1, k2, memory_plan=memory_plan) and not conflicts(
        plan, k2, k1, memory_plan=memory_plan
    )


def happens_before(
    plan: ExecPlan, *, memory_plan=None
) -> List[Set[int]]:
    """Hazard graph: ``deps[j]`` = kernels that must precede kernel ``j``.

    Built from every pairwise conflict in the plan's emitted order, so
    it subsumes the scheduler's producer-only dependence sets whenever a
    memory plan recycles storage.
    """
    n = len(plan.kernels)
    deps: List[Set[int]] = [set() for _ in range(n)]
    for j in range(n):
        for i in range(j):
            if conflicts(plan, i, j, memory_plan=memory_plan):
                deps[j].add(i)
    return deps


def check_order(
    plan: ExecPlan,
    order: Sequence[int],
    *,
    memory_plan=None,
    phase: Optional[str] = None,
) -> List[Diagnostic]:
    """Validate a proposed kernel execution ``order`` against all hazards.

    Returns RP103 if ``order`` is not a permutation of the plan's
    kernels, RP101 for every inverted value dependence (the later kernel
    of a RAW/WAR/WAW pair scheduled first), and RP104 for every slab
    reuse the new order breaks.  An empty list proves the reordering is
    sound: executing ``order`` produces the plan's exact values.
    """
    n = len(plan.kernels)
    if sorted(order) != list(range(n)):
        return [
            Diagnostic(
                code="RP103",
                severity=Severity.ERROR,
                message=(
                    f"proposed order {list(order)} is not a permutation "
                    f"of the plan's {n} kernel(s)"
                ),
                location=SourceLocation(phase=phase),
            )
        ]
    position = {k: t for t, k in enumerate(order)}
    diags: List[Diagnostic] = []
    for j in range(n):
        for i in range(j):
            if position[i] < position[j]:
                continue  # relative order preserved
            for c in conflicts(plan, i, j, memory_plan=memory_plan):
                code = "RP104" if c.resource.startswith("slab:") else "RP101"
                diags.append(
                    Diagnostic(
                        code=code,
                        severity=Severity.ERROR,
                        message=(
                            f"{c.kind} hazard on {c.resource!r}: kernel "
                            f"{i} ({plan.kernels[i].label!r}) must precede "
                            f"kernel {j} ({plan.kernels[j].label!r}) but the "
                            f"proposed order runs it at step "
                            f"{position[i]} after step {position[j]}"
                        ),
                        location=SourceLocation(
                            phase=phase, kernel=i, kernel2=j, value=c.resource
                        ),
                    )
                )
    return diags


def check_overlap_schedule(
    plan: ExecPlan,
    slots,
    *,
    memory_plan=None,
    phase: Optional[str] = None,
) -> List[Diagnostic]:
    """Post-hoc verification of a recorded overlap schedule: RP105.

    ``slots`` maps task keys of the form ``(kind, kernel_index, gpu)``
    to placed slots with ``start_s``/``finish_s`` (the shape
    :func:`repro.runtime.overlap.build_overlap_schedule` records).  The
    co-scheduled kernel pairs are re-derived from the placed wall-time
    intervals — never trusted from the schedule's own summary — and
    every pair that overlaps with positive measure must pass
    :func:`may_overlap`.  One RP105 per violating kernel pair, naming
    the first hazard it races on.
    """
    keys = sorted(slots, key=str)
    pairs: Set[Tuple[int, int]] = set()
    for x in range(len(keys)):
        sx = slots[keys[x]]
        kx = keys[x][1]
        for y in range(x + 1, len(keys)):
            sy = slots[keys[y]]
            ky = keys[y][1]
            if kx == ky:
                continue
            if sx.start_s < sy.finish_s and sy.start_s < sx.finish_s:
                pairs.add((min(kx, ky), max(kx, ky)))
    diags: List[Diagnostic] = []
    for i, j in sorted(pairs):
        found = conflicts(plan, i, j, memory_plan=memory_plan) or conflicts(
            plan, j, i, memory_plan=memory_plan
        )
        if not found:
            continue
        c = found[0]
        diags.append(
            Diagnostic(
                code="RP105",
                severity=Severity.ERROR,
                message=(
                    f"recorded schedule co-runs kernels {i} "
                    f"({plan.kernels[i].label!r}) and {j} "
                    f"({plan.kernels[j].label!r}) in overlapping wall "
                    f"time, but they race: {c.kind} on {c.resource!r}"
                ),
                location=SourceLocation(
                    phase=phase, kernel=i, kernel2=j, value=c.resource
                ),
            )
        )
    return diags


class RaceChecker:
    """Bundle checker: RP1xx over every phase's (proposed) kernel order.

    Each :class:`~repro.analysis.analyzer.PlanArtifact` may carry a
    ``proposed_order`` (a reordering some pass wants to execute); absent
    one, the plan's emitted order is validated — which also proves the
    hazard graph itself is order-consistent with slab reuse.  Artifacts
    carrying a recorded ``overlap_schedule`` additionally get RP105
    post-hoc verification: every kernel pair the placed timeline
    co-runs must be a pair :func:`may_overlap` certifies.
    """

    name = "races"
    codes = ("RP101", "RP102", "RP103", "RP104", "RP105")

    def check(self, bundle) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for artifact in bundle.plans:
            order = artifact.proposed_order
            if order is None:
                order = list(range(len(artifact.plan.kernels)))
            diags.extend(
                check_order(
                    artifact.plan,
                    order,
                    memory_plan=artifact.memory_plan,
                    phase=artifact.phase,
                )
            )
            schedule = getattr(artifact, "overlap_schedule", None)
            if schedule is not None:
                diags.extend(
                    check_overlap_schedule(
                        artifact.plan,
                        schedule.slots,
                        memory_plan=artifact.memory_plan,
                        phase=artifact.phase,
                    )
                )
        return diags


def overlap_diagnostics(
    plan: ExecPlan,
    pairs: Sequence[Tuple[int, int]],
    *,
    memory_plan=None,
    phase: Optional[str] = None,
) -> List[Diagnostic]:
    """RP102 diagnostics for every proposed parallel pair that races."""
    diags: List[Diagnostic] = []
    for k1, k2 in pairs:
        found = conflicts(plan, k1, k2, memory_plan=memory_plan) + conflicts(
            plan, k2, k1, memory_plan=memory_plan
        )
        for c in found:
            diags.append(
                Diagnostic(
                    code="RP102",
                    severity=Severity.ERROR,
                    message=(
                        f"kernels {k1} ({plan.kernels[k1].label!r}) and "
                        f"{k2} ({plan.kernels[k2].label!r}) may not overlap: "
                        f"{c.kind} on {c.resource!r}"
                    ),
                    location=SourceLocation(
                        phase=phase, kernel=k1, kernel2=k2, value=c.resource
                    ),
                )
            )
    return diags
