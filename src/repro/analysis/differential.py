"""Differential plan equivalence (RP701) — the analyzer form of
``Engine.verify_plan``.

The one *dynamic* checker: it executes the plan and a freshly built
per-op plan of the same module on the same concrete inputs and compares
every module output.  Expensive, so it only runs when a bundle carries
concrete arrays; the contract it completes is the README's
"analyzer clean ⇒ verify_plan passes" — every static checker above it
proves a necessary condition of this equivalence.
"""

from __future__ import annotations

from typing import List, Mapping

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity, SourceLocation
from repro.exec.plan import ExecPlan

__all__ = ["check_plan_equivalence", "DifferentialChecker"]


def check_plan_equivalence(
    engine,
    plan: ExecPlan,
    arrays: Mapping[str, np.ndarray],
    *,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    phase: str = "forward",
) -> List[Diagnostic]:
    """Run ``plan`` against the per-op reference; RP701 per divergence."""
    from repro.exec.plan import plan_module

    module = plan.module
    got = engine.run_plan(plan, engine.bind(module, arrays))
    reference_plan = plan_module(module, mode="per_op", keep=plan.keep)
    want = engine.run_plan(reference_plan, engine.bind(module, arrays))
    diags: List[Diagnostic] = []
    for name in module.outputs:
        if not np.allclose(got[name], want[name], rtol=rtol, atol=atol):
            worst = float(np.abs(got[name] - want[name]).max())
            diags.append(
                Diagnostic(
                    code="RP701",
                    severity=Severity.ERROR,
                    message=(
                        f"plan diverges from per-op reference on output "
                        f"{name!r} (max abs diff {worst:.3e})"
                    ),
                    location=SourceLocation(phase=phase, value=name),
                )
            )
    return diags


class DifferentialChecker:
    """Bundle checker: RP701 when concrete inputs are available.

    Needs ``bundle.engine`` and ``bundle.arrays`` — static-only bundles
    (the common case) skip it; the checker still registers as run so
    reports show the coverage decision explicitly.
    """

    name = "differential"
    codes = ("RP701",)

    def check(self, bundle) -> List[Diagnostic]:
        if bundle.engine is None or bundle.arrays is None:
            return []
        diags: List[Diagnostic] = []
        for artifact in bundle.plans:
            if artifact.phase != "forward":
                continue  # backward plans need the training harness
            diags.extend(
                check_plan_equivalence(
                    bundle.engine,
                    artifact.plan,
                    bundle.arrays,
                    phase=artifact.phase,
                )
            )
        return diags
