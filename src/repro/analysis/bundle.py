"""Building :class:`~repro.analysis.analyzer.ArtifactBundle` from a
configured :class:`~repro.session.Session`.

One function, :func:`build_bundle`, turns whatever a session would
execute into the exact artifact set the checkers inspect:

- every compiled phase's plan with its workload stats,
- arena memory plans for each phase — except when any module spec
  carries a *logical* dtype, mirroring the Engine's own refusal to
  arena-back storage it must materialise in a wider concrete dtype
  (the precision checker proves the refusal is the only gap),
- partition stats and the analytic comm schedule: the configured
  cluster's when one is set, otherwise a synthesized 2-way
  hash-partition model — so halo consistency is checked on every
  target, not only multi-GPU ones,
- each phase's recorded overlap schedule (built on the same partition
  model, against the configured cluster or a synthesized one), so the
  RP105 check re-verifies the pipelined runtime's placed timeline on
  every target,
- optionally the determinism-lint source trees.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.analyzer import ArtifactBundle, PlanArtifact
from repro.analysis.determinism import default_lint_paths
from repro.exec.analytic import plan_comm_records
from repro.graph.partition import PartitionStats
from repro.ir.tensorspec import LOGICAL_DTYPES

__all__ = ["build_bundle"]

#: Part count of the synthesized partition model used when the session
#: has no cluster configured — halo checking needs P >= 2 to be live.
DEFAULT_ANALYSIS_PARTS = 2


def build_bundle(
    session,
    *,
    training: Optional[bool] = None,
    lint: bool = False,
    parts: int = DEFAULT_ANALYSIS_PARTS,
    target: Optional[str] = None,
) -> ArtifactBundle:
    """Compile the session's configuration into an analyzable bundle.

    ``training`` defaults to the resolved strategy's capability;
    ``lint`` adds the determinism source trees (off by default so zoo
    sweeps lint once, not per target); ``parts`` sizes the synthesized
    partition model when no cluster is configured.
    """
    strategy = session.resolve_strategy()
    if training is None:
        training = strategy.supports_training
    compiled = session.compile(training=training)
    stats = session.resolve_stats()

    if training:
        phases = [("forward", compiled.fwd_plan), ("backward", compiled.bwd_plan)]
    else:
        phases = [("forward", compiled.plan)]

    logical = any(
        spec.dtype in LOGICAL_DTYPES
        for _, plan in phases
        for spec in plan.module.specs.values()
    )
    memory_plans = {}
    if not logical:
        smp = session.memory_plan(training=training)
        memory_plans["forward"] = smp.forward
        if smp.backward is not None:
            memory_plans["backward"] = smp.backward

    cluster = session.resolve_cluster()
    if cluster is not None:
        pstats = session.resolve_partition_stats()
    else:
        pstats = PartitionStats.from_stats(stats, parts)
    comm = {
        phase: plan_comm_records(plan, pstats) for phase, plan in phases
    }

    # Record each phase's overlap schedule for RP105 post-hoc
    # verification, priced against the configured cluster or a
    # synthesized pool of the session's device.
    from repro.gpu.cluster import Cluster  # lazy: keeps base import cheap
    from repro.runtime.overlap import build_overlap_schedule

    if cluster is None:
        spec = session.resolve_gpu()
        cluster = Cluster(
            name=f"{spec.name}x{pstats.num_parts}",
            gpu=spec,
            num_gpus=pstats.num_parts,
        )
    overlap_schedules = {
        phase: build_overlap_schedule(
            plan,
            pstats,
            cluster,
            memory_plan=memory_plans.get(phase),
            phase=phase,
        )
        for phase, plan in phases
    }

    if target is None:
        target = (
            f"{session._model_label()}/{session._strategy_label()}"
            f"/{session._dataset_label()}"
        )
    return ArtifactBundle(
        target=target,
        plans=[
            PlanArtifact(
                phase=phase,
                plan=plan,
                stats=stats,
                memory_plan=memory_plans.get(phase),
                overlap_schedule=overlap_schedules.get(phase),
            )
            for phase, plan in phases
        ],
        module=compiled.forward,
        pstats=pstats,
        comm_records=comm,
        lint_paths=default_lint_paths() if lint else [],
    )
