"""Arena-overlap checking: slab soundness and watermark reconciliation.

The arena planner (:mod:`repro.exec.memory`) recycles bytes between
lifetime-disjoint values.  This checker *proves* the resulting plan is
sound instead of trusting the planner:

- no two simultaneously-live slabs intersect in bytes (RP201),
- every slab is large enough for the aligned value it holds (RP202)
  and fits inside the declared arena extent (RP203),
- the recorded ledger peaks reconcile with an independent re-walk of
  the liveness ledger (RP204), and the arena provisions at least the
  unpinned live watermark — ``pinned + arena`` can never dip under the
  ledger peak (RP206),
- every boundary root is accounted for: slabbed, pinned, or a free
  graph constant (RP205).
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import Diagnostic, Severity, SourceLocation
from repro.exec.memory import MemoryPlan, _align, ledger_walk
from repro.ir.module import GRAPH_CONSTANTS

__all__ = ["check_memory_plan", "ArenaChecker"]


def check_memory_plan(
    memory_plan: MemoryPlan, stats, *, phase: str = "forward"
) -> List[Diagnostic]:
    """All RP2xx findings for one phase's arena plan on ``stats``."""
    mp = memory_plan
    plan = mp.plan
    diags: List[Diagnostic] = []
    loc = lambda value=None: SourceLocation(phase=phase, value=value)  # noqa: E731

    slabs = sorted(mp.slabs.values(), key=lambda s: (s.offset, s.name))
    for i, s1 in enumerate(slabs):
        for s2 in slabs[i + 1 :]:
            if s2.offset >= s1.offset + s1.size:
                break  # sorted by offset: no later slab can intersect s1
            if s1.overlaps(s2):
                diags.append(
                    Diagnostic(
                        code="RP201",
                        severity=Severity.ERROR,
                        message=(
                            f"slabs {s1.name!r} [{s1.offset},"
                            f"{s1.offset + s1.size}) live k{s1.birth}..k"
                            f"{s1.death} and {s2.name!r} [{s2.offset},"
                            f"{s2.offset + s2.size}) live k{s2.birth}..k"
                            f"{s2.death} are simultaneously live on "
                            "intersecting bytes"
                        ),
                        location=loc(f"{s1.name}|{s2.name}"),
                    )
                )

    specs = plan.module.specs
    V, E = stats.num_vertices, stats.num_edges
    for slab in slabs:
        need = specs[slab.name].nbytes(V, E)
        if slab.size < _align(need) or slab.nbytes < need:
            diags.append(
                Diagnostic(
                    code="RP202",
                    severity=Severity.ERROR,
                    message=(
                        f"slab {slab.name!r} reserves {slab.size} byte(s) "
                        f"but the value needs {need} "
                        f"(aligned {_align(need)})"
                    ),
                    location=loc(slab.name),
                )
            )
        if slab.offset < 0 or slab.offset + slab.size > mp.arena_bytes:
            diags.append(
                Diagnostic(
                    code="RP203",
                    severity=Severity.ERROR,
                    message=(
                        f"slab {slab.name!r} [{slab.offset},"
                        f"{slab.offset + slab.size}) extends past the "
                        f"declared arena of {mp.arena_bytes} byte(s)"
                    ),
                    location=loc(slab.name),
                )
            )

    # Coverage: every liveness root must be slabbed, pinned, or free.
    free_names = {plan.root_of(n) for n in GRAPH_CONSTANTS if n in specs}
    for root in sorted(plan.liveness()):
        if root in mp.slabs or root in mp.pinned or root in free_names:
            continue
        diags.append(
            Diagnostic(
                code="RP205",
                severity=Severity.ERROR,
                message=(
                    f"boundary value {root!r} has no arena slab and is "
                    "neither pinned nor a graph constant — an arena-backed "
                    "run would have nowhere to store it"
                ),
                location=loc(root),
            )
        )

    # Watermarks: recompute the ledger and reconcile the recorded peaks.
    sizes = {root: specs[root].nbytes(V, E) for root in plan.liveness()}
    peak, live_peak = ledger_walk(plan, sizes, pinned_roots=mp.pinned)
    if peak != mp.ledger_peak_bytes or live_peak != mp.live_peak_bytes:
        diags.append(
            Diagnostic(
                code="RP204",
                severity=Severity.ERROR,
                message=(
                    f"recorded ledger peaks ({mp.ledger_peak_bytes}, live "
                    f"{mp.live_peak_bytes}) disagree with the re-walked "
                    f"ledger ({peak}, live {live_peak})"
                ),
                location=loc(),
            )
        )
    if mp.arena_bytes < live_peak or mp.planned_peak_bytes < peak:
        diags.append(
            Diagnostic(
                code="RP206",
                severity=Severity.ERROR,
                message=(
                    f"arena of {mp.arena_bytes} byte(s) (+ pinned "
                    f"{mp.pinned_bytes}) cannot deliver the ledger "
                    f"watermark (peak {peak}, live {live_peak})"
                ),
                location=loc(),
            )
        )
    return diags


class ArenaChecker:
    """Bundle checker: RP2xx over every phase carrying a memory plan."""

    name = "arena"
    codes = ("RP201", "RP202", "RP203", "RP204", "RP205", "RP206")

    def check(self, bundle) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for artifact in bundle.plans:
            if artifact.memory_plan is None:
                continue
            diags.extend(
                check_memory_plan(
                    artifact.memory_plan, artifact.stats, phase=artifact.phase
                )
            )
        return diags
