"""Determinism lint: RNG and wall-clock hygiene in serving-path code.

The serving, dynamic-graph, and benchmark layers promise reproducible
runs: the same seed replays the identical workload, and the golden
tables regenerate bit-identically.  Both promises die silently the
moment someone reaches for ambient nondeterminism, so this lint walks
the AST of those trees and flags:

- RP501 — global NumPy RNG state (``np.random.rand`` et al.): hidden
  cross-call coupling, unseedable per workload,
- RP502 — ``default_rng()`` with no arguments: a fresh OS-entropy seed
  per call,
- RP503 — wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now`` …) anywhere outside ``measure.py`` — measured time
  belongs to the measurement layer only,
- RP504 — the stdlib ``random`` module: unseeded and process-global.

Suppressions are explicit per line: ``# repro: allow-wallclock`` and
``# repro: allow-rng`` mark audited exceptions (CLI progress printing
in ``bench/__main__.py`` is the canonical one).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic, Severity, SourceLocation

__all__ = ["lint_source", "lint_paths", "DeterminismChecker", "LINT_TREES"]

#: Package-relative trees the determinism contract covers.
LINT_TREES = ("serve", "dyn", "bench", "runtime")

_WALLCLOCK_PATHS = {
    ("time", "time"),
    ("time", "perf_counter"),
    ("time", "monotonic"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("datetime", "datetime", "now"),
    ("datetime", "datetime", "utcnow"),
    ("datetime", "datetime", "today"),
}

_NUMPY_NAMES = {"np", "numpy"}

#: Files whose whole purpose is reading the wall clock.
_WALLCLOCK_EXEMPT_FILES = {"measure.py"}


def _dotted(node: ast.AST) -> Optional[tuple]:
    """``a.b.c`` call target as a name tuple, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _pragma_lines(text: str, pragma: str) -> Set[int]:
    return {
        i
        for i, line in enumerate(text.splitlines(), start=1)
        if pragma in line
    }


def lint_source(
    text: str, filename: str = "<source>"
) -> List[Diagnostic]:
    """Lint one source text; returns RP5xx diagnostics with file/line."""
    try:
        tree = ast.parse(text, filename=filename)
    except SyntaxError as exc:
        raise ValueError(f"cannot lint {filename}: {exc}") from exc
    allow_clock = _pragma_lines(text, "repro: allow-wallclock")
    allow_rng = _pragma_lines(text, "repro: allow-rng")
    base = Path(filename).name
    diags: List[Diagnostic] = []

    def emit(code: str, line: int, message: str) -> None:
        diags.append(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=message,
                location=SourceLocation(file=filename, line=line),
            )
        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        path = _dotted(node.func)
        if path is None:
            continue
        if path == ("default_rng",):
            # Imported by name: ``from numpy.random import default_rng``.
            if (
                not node.args
                and not node.keywords
                and node.lineno not in allow_rng
            ):
                emit(
                    "RP502",
                    node.lineno,
                    "default_rng() without a seed draws OS entropy — pass "
                    "an explicit seed",
                )
            continue
        line = node.lineno
        if len(path) >= 2 and path[0] in _NUMPY_NAMES and path[1] == "random":
            if path[-1] == "default_rng":
                if (
                    not node.args
                    and not node.keywords
                    and line not in allow_rng
                ):
                    emit(
                        "RP502",
                        line,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy — pass an explicit seed",
                    )
            elif len(path) >= 3 and line not in allow_rng:
                emit(
                    "RP501",
                    line,
                    f"global NumPy RNG state via "
                    f"{'.'.join(path)} — construct a seeded "
                    "np.random.Generator instead",
                )
        elif path[0] == "random" and len(path) >= 2 and line not in allow_rng:
            emit(
                "RP504",
                line,
                f"stdlib {'.'.join(path)} uses process-global state — use "
                "a seeded np.random.Generator",
            )
        elif path in _WALLCLOCK_PATHS or (
            len(path) >= 2 and path[-2:] in {p[-2:] for p in _WALLCLOCK_PATHS}
            and path[0] in ("time", "datetime")
        ):
            if base not in _WALLCLOCK_EXEMPT_FILES and line not in allow_clock:
                emit(
                    "RP503",
                    line,
                    f"wall-clock read {'.'.join(path)}() outside measure.py "
                    "— timing belongs to the measurement layer "
                    "(# repro: allow-wallclock to audit an exception)",
                )
    return diags


def lint_paths(paths: Iterable[Path]) -> List[Diagnostic]:
    """Lint every ``*.py`` file under the given files/directories."""
    diags: List[Diagnostic] = []
    for path in paths:
        path = Path(path)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for f in files:
            diags.extend(lint_source(f.read_text(), filename=str(f)))
    return diags


class DeterminismChecker:
    """Bundle checker: RP5xx over the serve/dyn/bench trees.

    ``bundle.lint_paths`` selects the trees (default: the installed
    :data:`LINT_TREES`); ``bundle.extra_sources`` maps virtual filenames
    to source texts linted in addition — the hook the mutation harness
    injects corrupted code through.
    """

    name = "determinism"
    codes = ("RP501", "RP502", "RP503", "RP504")

    def check(self, bundle) -> List[Diagnostic]:
        diags = lint_paths(bundle.lint_paths)
        for filename, text in sorted(bundle.extra_sources.items()):
            diags.extend(lint_source(text, filename=filename))
        return diags


def default_lint_paths() -> List[Path]:
    """The installed package trees the determinism contract covers."""
    import repro

    root = Path(repro.__file__).parent
    return [root / tree for tree in LINT_TREES if (root / tree).is_dir()]
