"""Precision-flow checking: logical dtypes stay storage-only.

The precision machinery (:mod:`repro.ir.precision`) has a narrow
contract: *logical* dtypes (``bfloat16``, ``qint8``) are storage
formats, never compute formats.  ``qint8`` may only appear on
VERTEX-domain data inputs (the feature rows a gather dequantises on
load); no logical dtype may back an arena slab (the engine materialises
the concrete float32, which would not fit the logically-sized slab);
and every reduction must carry a dtype with a known fp32-accumulation
rule.  This checker proves those rules over a compiled artifact instead
of trusting ``apply_precision`` call sites.
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import Diagnostic, Severity, SourceLocation
from repro.exec.plan import ExecPlan
from repro.ir.module import GRAPH_CONSTANTS
from repro.ir.ops import OpKind
from repro.ir.tensorspec import LOGICAL_DTYPES

__all__ = ["check_precision_flow", "PrecisionFlowChecker", "ACCUMULATION_DTYPES"]

#: Reduction output dtypes with a defined fp32-accumulation rule:
#: fp32/fp64 accumulate natively; fp16 segment reductions accumulate in
#: fp32 and round back; bfloat16 is computed as fp32 throughout.
#: Integer dtypes are allowed only for argmax index outputs
#: (``outputs[1]`` of a max-Gather), which are not reductions of data.
ACCUMULATION_DTYPES = frozenset(
    {"float32", "float64", "float16", "bfloat16"}
)


def check_precision_flow(
    plan: ExecPlan, *, memory_plan=None, phase: str = "forward"
) -> List[Diagnostic]:
    """All RP3xx findings for one phase's plan (and optional arena)."""
    module = plan.module
    specs = module.specs
    diags: List[Diagnostic] = []
    loc = lambda value=None, **kw: SourceLocation(  # noqa: E731
        phase=phase, value=value, **kw
    )

    # RP301 — qint8 is a *feature-gather* format: legal only on
    # VERTEX-domain data inputs, never on params, graph constants, or
    # any value a kernel computed (those are dequantised float32).
    quant_ok = {
        name
        for name in module.inputs
        if name not in GRAPH_CONSTANTS
        and specs[name].domain.value == "vertex"
    }
    for name in sorted(specs):
        if specs[name].dtype == "qint8" and name not in quant_ok:
            diags.append(
                Diagnostic(
                    code="RP301",
                    severity=Severity.ERROR,
                    message=(
                        f"{name!r} carries qint8 but is not a VERTEX-domain "
                        "data input — quantisation compresses feature "
                        "storage, derived values must be dequantised fp32"
                    ),
                    location=loc(name),
                )
            )

    # RP302 — a logical dtype has no NumPy representation: the engine
    # materialises the concrete float32, which overflows a slab sized to
    # the logical itemsize.  The Engine refuses these at bind time; the
    # checker proves the refusal can never be needed.
    if memory_plan is not None:
        for root in sorted(memory_plan.slabs):
            if specs[root].dtype in LOGICAL_DTYPES:
                diags.append(
                    Diagnostic(
                        code="RP302",
                        severity=Severity.ERROR,
                        message=(
                            f"arena slab for {root!r} holds logical dtype "
                            f"{specs[root].dtype!r}; the engine would "
                            "materialise concrete "
                            f"{specs[root].concrete_dtype} and overflow it"
                        ),
                        location=loc(root),
                    )
                )

    # RP303 — every reduction (Gather, param-grad accumulation) needs an
    # fp32-accumulation rule for its primary output dtype.
    for i, kernel in enumerate(plan.kernels):
        for node in kernel.nodes:
            if node.kind not in (OpKind.GATHER, OpKind.PARAM_GRAD):
                continue
            out = node.outputs[0]
            if specs[out].dtype not in ACCUMULATION_DTYPES:
                diags.append(
                    Diagnostic(
                        code="RP303",
                        severity=Severity.ERROR,
                        message=(
                            f"reduction {node.kind.value}:{node.fn} output "
                            f"{out!r} has dtype {specs[out].dtype!r} with no "
                            "fp32-accumulation rule"
                        ),
                        location=loc(out, kernel=i),
                    )
                )

    # RP304 — a view is a zero-copy alias: its output must carry its
    # root's dtype or byte accounting silently forks from storage.
    for i, kernel in enumerate(plan.kernels):
        for node in kernel.nodes:
            if node.kind is not OpKind.VIEW:
                continue
            out, root = node.outputs[0], plan.root_of(node.outputs[0])
            if specs[out].dtype != specs[root].dtype:
                diags.append(
                    Diagnostic(
                        code="RP304",
                        severity=Severity.ERROR,
                        message=(
                            f"view {out!r} has dtype {specs[out].dtype!r} "
                            f"but aliases {root!r} of dtype "
                            f"{specs[root].dtype!r}"
                        ),
                        location=loc(out, kernel=i),
                    )
                )
    return diags


class PrecisionFlowChecker:
    """Bundle checker: RP3xx over every compiled phase."""

    name = "precision"
    codes = ("RP301", "RP302", "RP303", "RP304")

    def check(self, bundle) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for artifact in bundle.plans:
            diags.extend(
                check_precision_flow(
                    artifact.plan,
                    memory_plan=artifact.memory_plan,
                    phase=artifact.phase,
                )
            )
        return diags
