"""Structural IR checking (RP0xx) — the analyzer form of
``repro.ir.validate.validate_module``.

Same invariants, collected as :class:`Diagnostic`\\ s instead of raised
one at a time, so a corrupted module reports *every* structural defect
in one pass.  ``validate_module`` remains the raising shim over this
walk (first error wins, identical message text), so existing call sites
and tests keep their exception contract.
"""

from __future__ import annotations

from typing import List, Set

from repro.analysis.diagnostics import Diagnostic, Severity, SourceLocation
from repro.ir.module import GRAPH_CONSTANTS, Module, infer_output_specs
from repro.ir.tensorspec import Domain

__all__ = ["check_module", "StructureChecker"]


def _err(code: str, message: str, value: str = None) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        message=message,
        location=SourceLocation(value=value),
    )


def check_module(module: Module) -> List[Diagnostic]:
    """All RP0xx findings of one module (empty list = well-formed)."""
    diags: List[Diagnostic] = []
    defined: Set[str] = set()

    for name in module.inputs:
        if name not in module.specs:
            diags.append(_err("RP001", f"input {name!r} has no spec", name))
            continue
        if name in defined:
            diags.append(
                _err("RP002", f"duplicate interface value {name!r}", name)
            )
        if name in GRAPH_CONSTANTS and module.specs[name] != GRAPH_CONSTANTS[name]:
            diags.append(
                _err(
                    "RP009",
                    f"graph constant {name!r} has wrong spec "
                    f"{module.specs[name]}",
                    name,
                )
            )
        defined.add(name)

    for name in module.params:
        if name not in module.specs:
            diags.append(_err("RP001", f"param {name!r} has no spec", name))
            continue
        if module.specs[name].domain is not Domain.PARAM:
            diags.append(
                _err(
                    "RP008",
                    f"param {name!r} must be PARAM domain, got "
                    f"{module.specs[name]}",
                    name,
                )
            )
        if name in defined:
            diags.append(
                _err("RP002", f"duplicate interface value {name!r}", name)
            )
        defined.add(name)

    for node in module.nodes:
        for used in node.all_inputs():
            if used not in defined:
                diags.append(
                    _err(
                        "RP003",
                        f"node {node.name!r} uses {used!r} before "
                        "definition (or it is never defined)",
                        used,
                    )
                )
        try:
            inferred = infer_output_specs(node, module.specs)
        except (ValueError, KeyError) as exc:
            diags.append(_err("RP004", f"node {node.name!r}: {exc}", node.name))
            defined.update(node.outputs)
            continue
        for out in node.outputs:
            if out in defined:
                diags.append(_err("RP002", f"value {out!r} defined twice", out))
            if out not in module.specs:
                diags.append(
                    _err("RP010", f"output {out!r} missing from specs", out)
                )
            elif module.specs[out] != inferred[out]:
                diags.append(
                    _err(
                        "RP005",
                        f"spec mismatch for {out!r}: recorded "
                        f"{module.specs[out]} vs inferred {inferred[out]}",
                        out,
                    )
                )
            defined.add(out)

    for out in module.outputs:
        if out not in defined:
            diags.append(
                _err("RP006", f"module output {out!r} is never defined", out)
            )

    extra = set(module.specs) - defined
    if extra:
        diags.append(
            _err(
                "RP007",
                f"specs recorded for undefined values: {sorted(extra)}",
            )
        )
    return diags


class StructureChecker:
    """Bundle checker: RP0xx over every compiled phase's module."""

    name = "structure"
    codes = (
        "RP001", "RP002", "RP003", "RP004", "RP005",
        "RP006", "RP007", "RP008", "RP009", "RP010",
    )

    def check(self, bundle) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        seen = set()
        modules = [bundle.module] if bundle.module is not None else []
        modules += [a.plan.module for a in bundle.plans]
        for m in modules:
            if id(m) in seen:
                continue
            seen.add(id(m))
            diags.extend(check_module(m))
        return diags
