"""The analyzer: registered checkers over a compiled artifact bundle.

One :class:`ArtifactBundle` packages everything a ``Session.compile``
produces for a (model, strategy, dataset) triple — plans per phase,
arena memory plans, partition stats, the analytic comm schedule — plus
the source trees under the determinism contract.  The
:class:`Analyzer` runs every registered checker over the bundle and
returns one :class:`~repro.analysis.diagnostics.AnalysisReport`.

Checkers are plain objects with a ``name``, a ``codes`` tuple, and a
``check(bundle) -> list[Diagnostic]`` method; :data:`DEFAULT_CHECKERS`
is the shipped set.  A checker whose scope is absent from the bundle
(no partition, no memory plan, no concrete arrays) returns nothing but
still registers as *run*, so a clean report always shows full coverage
rather than silence-by-skipping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.arena import ArenaChecker
from repro.analysis.determinism import DeterminismChecker, default_lint_paths
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    sort_diagnostics,
)
from repro.analysis.differential import DifferentialChecker
from repro.analysis.halo import HaloChecker
from repro.analysis.partition_checks import PartitionChecker
from repro.analysis.precision_flow import PrecisionFlowChecker
from repro.analysis.races import RaceChecker
from repro.analysis.structure import StructureChecker
from repro.exec.plan import ExecPlan

__all__ = [
    "PlanArtifact",
    "ArtifactBundle",
    "Analyzer",
    "DEFAULT_CHECKERS",
    "make_default_checkers",
]


@dataclass
class PlanArtifact:
    """One compiled phase: its plan, stats, and optional arena plan.

    ``proposed_order`` lets a pass submit a kernel reordering for race
    checking without constructing the reordered plan (an illegal order
    could not even be constructed — ``ExecPlan`` rejects use-before-def
    schedules at build time).  ``overlap_schedule`` carries the phase's
    recorded :class:`~repro.runtime.overlap.OverlapSchedule` for RP105
    post-hoc verification of the placed timeline.
    """

    phase: str
    plan: ExecPlan
    stats: object
    memory_plan: Optional[object] = None
    proposed_order: Optional[Sequence[int]] = None
    overlap_schedule: Optional[object] = None


@dataclass
class ArtifactBundle:
    """Everything the checkers inspect for one analysis target."""

    target: str
    plans: List[PlanArtifact] = field(default_factory=list)
    module: Optional[object] = None
    pstats: Optional[object] = None
    #: phase -> per-GPU ``CommRecord`` lists (the analytic schedule).
    comm_records: Dict[str, list] = field(default_factory=dict)
    partition: Optional[object] = None
    lint_paths: List[Path] = field(default_factory=list)
    #: virtual filename -> source text, linted in addition to the trees
    #: (the mutation harness injects corrupted code through this).
    extra_sources: Dict[str, str] = field(default_factory=dict)
    engine: Optional[object] = None
    arrays: Optional[Mapping] = None


def make_default_checkers(*, lint: bool = True) -> List[object]:
    """Fresh instances of the shipped checker set, in report order."""
    checkers: List[object] = [
        StructureChecker(),
        RaceChecker(),
        ArenaChecker(),
        PrecisionFlowChecker(),
        HaloChecker(),
        PartitionChecker(),
        DifferentialChecker(),
    ]
    if lint:
        checkers.append(DeterminismChecker())
    return checkers


DEFAULT_CHECKERS = tuple(c.name for c in make_default_checkers())


class Analyzer:
    """Run registered checkers over an :class:`ArtifactBundle`."""

    def __init__(self, checkers: Optional[Sequence[object]] = None):
        self.checkers = (
            list(checkers) if checkers is not None else make_default_checkers()
        )

    def run(self, bundle: ArtifactBundle) -> AnalysisReport:
        diagnostics: List[Diagnostic] = []
        run_names: List[str] = []
        for checker in self.checkers:
            diagnostics.extend(checker.check(bundle))
            run_names.append(checker.name)
        return AnalysisReport(
            target=bundle.target,
            diagnostics=sort_diagnostics(diagnostics),
            checkers_run=run_names,
        )
