"""Graph-partition invariants (RP6xx) — the analyzer form of
``GraphPartition.validate``.

The ownership model every multi-GPU walk relies on: each vertex in
exactly one part, each edge owned by its destination's part, and the
owned sets tiling the graph exactly.  ``GraphPartition.validate``
remains the raising shim (AssertionError, identical messages).
"""

from __future__ import annotations

from typing import List

from repro.analysis.diagnostics import Diagnostic, Severity, SourceLocation

__all__ = ["check_partition", "PartitionChecker"]


def check_partition(gp) -> List[Diagnostic]:
    """All RP6xx findings of one :class:`GraphPartition`."""
    diags: List[Diagnostic] = []

    def err(code: str, message: str) -> None:
        diags.append(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=message,
                location=SourceLocation(),
            )
        )

    if gp.assignment.shape != (gp.graph.num_vertices,):
        err("RP601", "assignment must cover every vertex")
        return diags  # downstream checks index through the assignment
    if gp.assignment.size and (
        gp.assignment.min() < 0 or gp.assignment.max() >= gp.num_parts
    ):
        err("RP602", "assignment out of range")
    owned_total = sum(p.num_owned for p in gp.parts)
    if owned_total != gp.graph.num_vertices:
        err("RP603", "owned sets must cover the vertex set")
    edge_total = sum(p.in_edge_ids.size for p in gp.parts)
    if edge_total != gp.graph.num_edges:
        err("RP604", "owned edge sets must cover the edge set")
    return diags


class PartitionChecker:
    """Bundle checker: RP6xx when the bundle carries a concrete partition."""

    name = "partition"
    codes = ("RP601", "RP602", "RP603", "RP604")

    def check(self, bundle) -> List[Diagnostic]:
        if bundle.partition is None:
            return []
        return check_partition(bundle.partition)
