"""Halo-consistency checking: every ghost read has exactly one exchange.

A partitioned run (:class:`~repro.exec.multi.MultiEngine`) only computes
correct values if every remote row a kernel touches is fetched by the
exchange schedule — and the analytic cost model only prices the run
correctly if it schedules *exactly* those fetches, once each.  This
checker re-derives the required exchanges from first principles — a
node-level walk of the plan over the partition's halo extents — and
reconciles them against the analytic
:class:`~repro.exec.profiler.CommRecord` schedule:

- RP401: a ghost read (or gradient reduction) with no covering record —
  the concrete run would compute on stale/absent rows,
- RP402: a ghost read covered more than once — double-priced traffic,
- RP403: a covering record whose byte count disagrees with the halo
  extent times the row width,
- RP404: a record matching no ghost read — phantom traffic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, SourceLocation
from repro.exec.plan import ExecPlan
from repro.graph.partition import PartitionStats, allreduce_bytes_per_gpu
from repro.ir.functions import get_scatter_fn
from repro.ir.ops import OpKind
from repro.ir.tensorspec import Domain

__all__ = ["expected_exchanges", "check_comm_records", "HaloChecker"]


def expected_exchanges(
    plan: ExecPlan, pstats: PartitionStats
) -> List[Dict[Tuple[str, str], int]]:
    """Per-GPU required exchanges: ``(kind, label) -> bytes``.

    Derived from the ownership semantics alone (destination-owned
    edges, owned + ghost vertex rows per part):

    - a Scatter reading a vertex tensor through the edge *source* needs
      that tensor's ghost rows — once per (kernel, storage root),
    - an out-orientation Gather needs the remotely-owned rows of its
      edge operand,
    - a parameter-gradient over row-distributed operands needs a ring
      all-reduce of its output; gradients of replicated (PARAM/DENSE)
      operands are computed identically everywhere and are exempt.
    """
    specs = plan.module.specs
    P = pstats.num_parts
    expected: List[Dict[Tuple[str, str], int]] = [dict() for _ in range(P)]
    if P <= 1:
        return expected
    for kernel in plan.kernels:
        per_kernel: Dict[Tuple[str, str], int] = {}
        for node in kernel.nodes:
            if node.kind is OpKind.SCATTER:
                fn = get_scatter_fn(node.fn)
                if fn.reads_u and not fn.vertex_direct_read:
                    name = node.inputs[0]
                    if specs[name].domain is Domain.VERTEX:
                        root = plan.root_of(name)
                        per_kernel[("halo_in", f"{kernel.label}:{root}")] = (
                            specs[name].row_bytes
                        )
            elif node.kind is OpKind.GATHER and node.orientation == "out":
                name = node.inputs[0]
                root = plan.root_of(name)
                per_kernel[("halo_out", f"{kernel.label}:{root}")] = (
                    specs[name].row_bytes
                )
            elif node.kind is OpKind.PARAM_GRAD:
                if {specs[n].domain for n in node.inputs} <= {
                    Domain.PARAM,
                    Domain.DENSE,
                }:
                    continue
                per_kernel[("allreduce", f"{kernel.label}:{node.name}")] = (
                    specs[node.outputs[0]].row_bytes
                )
        for (kind, label), row_bytes in per_kernel.items():
            for p in range(P):
                if kind == "halo_in":
                    nbytes = pstats.halo_in_rows[p] * row_bytes
                elif kind == "halo_out":
                    nbytes = pstats.halo_out_rows[p] * row_bytes
                else:
                    nbytes = allreduce_bytes_per_gpu(row_bytes, P)
                expected[p][(kind, label)] = nbytes
    return expected


def check_comm_records(
    plan: ExecPlan,
    pstats: PartitionStats,
    records,
    *,
    phase: str = "forward",
) -> List[Diagnostic]:
    """Reconcile recorded per-GPU ``CommRecord`` lists with the ghost
    reads the plan provably performs on this partition."""
    diags: List[Diagnostic] = []
    expected = expected_exchanges(plan, pstats)
    for p in range(pstats.num_parts):
        want = expected[p]
        got: Dict[Tuple[str, str], List[int]] = {}
        for rec in records[p]:
            got.setdefault((rec.kind, rec.label), []).append(rec.bytes)
        loc = lambda value: SourceLocation(  # noqa: E731
            phase=phase, gpu=p, value=value
        )
        for (kind, label), nbytes in sorted(want.items()):
            have = got.get((kind, label))
            if have is None:
                diags.append(
                    Diagnostic(
                        code="RP401",
                        severity=Severity.ERROR,
                        message=(
                            f"ghost read {label!r} ({kind}, {nbytes} "
                            "byte(s)) is not covered by any comm record — "
                            "the partitioned run would compute on stale rows"
                        ),
                        location=loc(label),
                    )
                )
                continue
            if len(have) > 1:
                diags.append(
                    Diagnostic(
                        code="RP402",
                        severity=Severity.ERROR,
                        message=(
                            f"ghost read {label!r} ({kind}) is covered by "
                            f"{len(have)} comm records; exchanges are "
                            "deduplicated per (kernel, tensor)"
                        ),
                        location=loc(label),
                    )
                )
            if any(b != nbytes for b in have):
                diags.append(
                    Diagnostic(
                        code="RP403",
                        severity=Severity.ERROR,
                        message=(
                            f"comm record {label!r} ({kind}) moves "
                            f"{have} byte(s) but the halo extent requires "
                            f"{nbytes}"
                        ),
                        location=loc(label),
                    )
                )
        for (kind, label) in sorted(set(got) - set(want)):
            diags.append(
                Diagnostic(
                    code="RP404",
                    severity=Severity.ERROR,
                    message=(
                        f"comm record {label!r} ({kind}) matches no ghost "
                        "read of the plan on this partition (phantom "
                        "traffic)"
                    ),
                    location=loc(label),
                )
            )
    return diags


class HaloChecker:
    """Bundle checker: RP4xx over every phase of a partitioned bundle."""

    name = "halo"
    codes = ("RP401", "RP402", "RP403", "RP404")

    def check(self, bundle) -> List[Diagnostic]:
        if bundle.pstats is None:
            return []
        diags: List[Diagnostic] = []
        for artifact in bundle.plans:
            records = bundle.comm_records.get(artifact.phase)
            if records is None:
                continue
            diags.extend(
                check_comm_records(
                    artifact.plan, bundle.pstats, records, phase=artifact.phase
                )
            )
        return diags
