"""Static plan analysis: prove a configuration sound before running it.

The runtime layers each guard their own invariants with scattered
asserts that fire mid-execution; this package is the unified *static*
layer that proves them up front over a compiled artifact bundle — the
prerequisite for the async pipelined runtime (no kernel overlap without
a race proof) and the autotuner (candidates rejected statically, not by
crashing).

Entry points
------------
- :func:`repro.session.Session.analyze` — analyze the configured
  session, returning an :class:`AnalysisReport`,
- ``python -m repro.lint`` — CLI over registry triples, ``--all`` for
  the zoo, ``--self-test`` for the mutation harness,
- :func:`may_overlap` / :func:`check_order` — the race-detector API
  schedulers and the future async executor consult directly.

Diagnostics carry stable ``RPxyz`` codes (see
:mod:`repro.analysis.diagnostics`); the mutation harness in
:mod:`repro.analysis.mutate` keeps every checker honest.
"""

from repro.analysis.analyzer import (
    Analyzer,
    ArtifactBundle,
    DEFAULT_CHECKERS,
    PlanArtifact,
    make_default_checkers,
)
from repro.analysis.arena import ArenaChecker, check_memory_plan
from repro.analysis.bundle import build_bundle
from repro.analysis.determinism import (
    DeterminismChecker,
    lint_paths,
    lint_source,
)
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    SourceLocation,
    describe_code,
)
from repro.analysis.differential import DifferentialChecker, check_plan_equivalence
from repro.analysis.halo import HaloChecker, check_comm_records, expected_exchanges
from repro.analysis.mutate import MUTANTS, run_mutant, self_test
from repro.analysis.partition_checks import PartitionChecker, check_partition
from repro.analysis.precision_flow import PrecisionFlowChecker, check_precision_flow
from repro.analysis.races import (
    RaceChecker,
    check_order,
    check_overlap_schedule,
    conflicts,
    happens_before,
    kernel_access,
    may_overlap,
    overlap_diagnostics,
)
from repro.analysis.structure import StructureChecker, check_module

__all__ = [
    "Analyzer",
    "ArtifactBundle",
    "PlanArtifact",
    "DEFAULT_CHECKERS",
    "make_default_checkers",
    "build_bundle",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "SourceLocation",
    "CODES",
    "describe_code",
    # checkers
    "StructureChecker",
    "RaceChecker",
    "ArenaChecker",
    "PrecisionFlowChecker",
    "HaloChecker",
    "PartitionChecker",
    "DifferentialChecker",
    "DeterminismChecker",
    # checker functions
    "check_module",
    "check_memory_plan",
    "check_precision_flow",
    "check_comm_records",
    "expected_exchanges",
    "check_partition",
    "check_plan_equivalence",
    "lint_source",
    "lint_paths",
    # races API
    "kernel_access",
    "conflicts",
    "happens_before",
    "may_overlap",
    "check_order",
    "check_overlap_schedule",
    "overlap_diagnostics",
    # mutation harness
    "MUTANTS",
    "run_mutant",
    "self_test",
]
