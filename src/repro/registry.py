"""Unified name → object registries with decorator registration.

Every user-facing lookup in the library (models, execution strategies,
optimization passes, GPUs, datasets) goes through one generic
:class:`Registry`, so all of them share the same behaviour:

- decorator registration (``@register_model("gat")`` …) — third-party
  code extends the library without editing its source,
- duplicate-name rejection (pass ``replace=True`` to override),
- uniform ``KeyError`` messages with did-you-mean suggestions.

The registries themselves live here; the built-in entries are added by
the modules that define them (``repro.models``, ``repro.frameworks``,
``repro.opt.pipeline``, ``repro.gpu.spec``, ``repro.graph.datasets``),
so importing :mod:`repro` populates everything.

Entry conventions
-----------------
=========  =============================================================
registry   entry
=========  =============================================================
MODELS     factory ``(in_dim, num_classes) -> GNNModel``
STRATEGIES ``ExecutionStrategy`` instance (keyed by its ``.name``)
PASSES     ``Pass`` subclass (instantiated with no arguments)
GPUS       ``GPUSpec`` instance (keyed by its ``.name``)
DATASETS   zero-argument builder ``() -> Dataset``
=========  =============================================================
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Dict, Iterator, List, Optional, TypeVar

__all__ = [
    "Registry",
    "MODELS",
    "STRATEGIES",
    "PASSES",
    "GPUS",
    "DATASETS",
    "register_model",
    "register_strategy",
    "register_pass",
    "register_gpu",
    "register_dataset",
]

T = TypeVar("T")


class Registry:
    """A named mapping from string keys to registered objects.

    Behaves like a read-only :class:`dict` (``in``, ``len``, iteration
    over names, ``[name]``) plus :meth:`add` / :meth:`register` for
    population and :meth:`get` with did-you-mean errors.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Any] = {}

    # -- population ----------------------------------------------------
    def add(self, name: str, obj: T, *, replace: bool = False) -> T:
        """Register ``obj`` under ``name``; reject duplicates."""
        if not isinstance(name, str) or not name:
            raise TypeError(
                f"{self.kind} registry keys must be non-empty strings, "
                f"got {name!r}"
            )
        if name in self._entries and not replace:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                "pass replace=True to override"
            )
        self._entries[name] = obj
        return obj

    def register(
        self, name: Optional[str] = None, *, replace: bool = False
    ) -> Callable[[T], T]:
        """Decorator form of :meth:`add`.

        ``@reg.register("key")`` registers the decorated object under
        ``key``; with no name the object's ``__name__`` (or ``.name``
        attribute) is used.
        """

        def deco(obj: T) -> T:
            key = name
            if key is None:
                key = getattr(obj, "name", None) or getattr(obj, "__name__", None)
            self.add(key, obj, replace=replace)
            return obj

        return deco

    def remove(self, name: str) -> None:
        """Drop one entry (primarily for test cleanup)."""
        self._entries.pop(name, None)

    _RAISE = object()

    # -- lookup --------------------------------------------------------
    def get(self, name: str, default: Any = _RAISE) -> Any:
        """Look up ``name``.

        With no ``default``, a missing name raises a ``KeyError`` with a
        did-you-mean suggestion; with one, it is returned instead
        (``dict.get``-style, for code treating the registry as a dict).
        """
        try:
            return self._entries[name]
        except KeyError:
            if default is not Registry._RAISE:
                return default
            raise KeyError(self._unknown_message(name)) from None

    def _unknown_message(self, name: str) -> str:
        msg = f"unknown {self.kind} {name!r}"
        close = difflib.get_close_matches(str(name), self._entries, n=1, cutoff=0.6)
        if close:
            msg += f"; did you mean {close[0]!r}?"
        return msg + f" available: {self.names()}"

    def names(self) -> List[str]:
        return sorted(self._entries)

    # -- mapping protocol ----------------------------------------------
    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def __setitem__(self, name: str, obj: Any) -> None:
        """Dict-style assignment (back-compat): overwrites like a dict."""
        self.add(name, obj, replace=True)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[str]:
        return self.names()

    def values(self) -> List[Any]:
        return [self._entries[k] for k in self.names()]

    def items(self) -> List:
        return [(k, self._entries[k]) for k in self.names()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, {self.names()})"


# ======================================================================
# The library's five registries.
# ======================================================================
MODELS = Registry("model")
STRATEGIES = Registry("strategy")
PASSES = Registry("pass")
GPUS = Registry("GPU")
DATASETS = Registry("dataset")


def register_model(
    name: str, *, replace: bool = False
) -> Callable[[Callable], Callable]:
    """Decorator: register a ``(in_dim, num_classes) -> GNNModel`` factory."""
    return MODELS.register(name, replace=replace)


def _register_named(
    registry: Registry, obj: Any, *, replace: bool
) -> Any:
    """Shared helper for registries keyed by the entry's ``.name``.

    ``obj`` may be the instance itself or a zero-argument factory
    (evaluated eagerly); returns what the caller passed so both the
    direct-call and decorator forms compose.
    """
    entry = obj() if callable(obj) else obj
    key = getattr(entry, "name", None)
    if not key:
        raise TypeError(
            f"register_{registry.kind.lower()} needs an object with a "
            f"non-empty .name attribute, got {entry!r}"
        )
    registry.add(key, entry, replace=replace)
    return obj if callable(obj) else entry


def register_strategy(strategy: Any = None, *, replace: bool = False) -> Any:
    """Register an :class:`~repro.frameworks.strategy.ExecutionStrategy`.

    Accepts either the strategy instance directly::

        register_strategy(ExecutionStrategy(name="mine", ...))

    or decorator form over a zero-argument factory (evaluated eagerly)::

        @register_strategy
        def _mine():
            return ExecutionStrategy(name="mine", ...)
    """
    if strategy is None:
        return lambda obj: _register_named(STRATEGIES, obj, replace=replace)
    return _register_named(STRATEGIES, strategy, replace=replace)


def register_pass(
    name: Optional[str] = None, *, replace: bool = False
) -> Callable:
    """Decorator: register a :class:`~repro.opt.pipeline.Pass` subclass.

    Usable bare (``@register_pass`` — keyed by the class's ``name``
    attribute) or with an explicit key (``@register_pass("my-pass")``).
    """
    if name is not None and not isinstance(name, str):
        # Bare @register_pass usage: `name` is the decorated class.
        cls = name
        return PASSES.register(replace=replace)(cls)
    return PASSES.register(name, replace=replace)


def register_gpu(gpu: Any = None, *, replace: bool = False) -> Any:
    """Register a :class:`~repro.gpu.spec.GPUSpec` (keyed by ``.name``)."""
    if gpu is None:
        return lambda obj: _register_named(GPUS, obj, replace=replace)
    return _register_named(GPUS, gpu, replace=replace)


def register_dataset(
    name: str, *, replace: bool = False
) -> Callable[[Callable], Callable]:
    """Decorator: register a zero-argument ``() -> Dataset`` builder."""
    return DATASETS.register(name, replace=replace)
