"""Composable pass pipeline: the compile path as first-class passes.

The paper's point is that reorganization (§4), unified fusion (§5) and
recomputation (§6) are *coordinated but separable* stages over one IR.
This module makes that literal: each stage is a :class:`Pass` object,
an :class:`ExecutionStrategy <repro.frameworks.strategy.ExecutionStrategy>`
is pure data that selects and parameterizes passes, and a
:class:`PassManager` runs the sequence while recording per-pass IR
deltas and wall-clock timings.

The default sequences are::

    training:  reorganize -> cse -> autodiff -> recompute -> fusion
    forward:   reorganize -> cse -> fusion

A strategy may override the order via its ``pass_names`` field; the
names are resolved through the :data:`repro.registry.PASSES` registry,
so user-defined passes registered with ``@register_pass`` compose with
the built-ins without editing library source (see
``examples/custom_strategy.py``).

Passes communicate through :attr:`PassContext.state`, a dict whose
conventional keys are:

==================  ==================================================
key                 value
==================  ==================================================
``forward``         the (possibly rewritten) forward :class:`Module`
``reorganized``     whether §4 rewrote anything (reorganize sets it)
``needs_cse``       set by custom rewrites to request a CSE sweep
``training_graph``  :class:`TrainingGraph` (autodiff output)
``decision``        :class:`RecomputeDecision` (§6 output)
``stash``           forward values persisted for backward
``fwd_plan``        forward :class:`ExecPlan` (§5 output)
``bwd_plan``        backward :class:`ExecPlan` (training only)
==================  ==================================================
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.exec.plan import plan_module
from repro.ir.autodiff import differentiate
from repro.ir.transform import common_subexpression_eliminate
from repro.opt.recompute import plan_recompute
from repro.opt.reorganize import reorganize
from repro.registry import PASSES, register_pass

__all__ = [
    "Pass",
    "PassContext",
    "PassRecord",
    "PassManager",
    "build_pipeline",
    "DEFAULT_TRAINING_PASSES",
    "DEFAULT_FORWARD_PASSES",
    "ReorganizePass",
    "CSEPass",
    "AutodiffPass",
    "RecomputePlanPass",
    "FusionPass",
]

DEFAULT_TRAINING_PASSES = ("reorganize", "cse", "autodiff", "recompute", "fusion")
DEFAULT_FORWARD_PASSES = ("reorganize", "cse", "fusion")


@dataclass
class PassRecord:
    """What one pass did: timing plus IR size before/after."""

    name: str
    seconds: float
    nodes_before: int
    nodes_after: int
    summary: str = ""

    @property
    def changed_ir(self) -> bool:
        return self.nodes_after != self.nodes_before

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        delta = f"{self.nodes_before} -> {self.nodes_after} nodes"
        extra = f"  ({self.summary})" if self.summary else ""
        return f"{self.name:12s} {self.seconds * 1e3:8.2f} ms  {delta}{extra}"


@dataclass
class PassContext:
    """Mutable compilation state threaded through a pipeline run."""

    strategy: Any
    model: Any = None
    training: bool = True
    state: Dict[str, Any] = field(default_factory=dict)
    records: List[PassRecord] = field(default_factory=list)

    @property
    def forward(self):
        return self.state["forward"]

    def require(self, key: str) -> Any:
        """Fetch a state key, with a pipeline-aware error when absent."""
        if key not in self.state:
            ran = [r.name for r in self.records]
            raise KeyError(
                f"pipeline state has no {key!r}; passes run so far: {ran} "
                "(a custom pipeline must produce it before this point)"
            )
        return self.state[key]


class Pass(abc.ABC):
    """One compilation stage.  Subclass, set ``name``, implement ``run``.

    ``training_only`` passes are skipped automatically when the pipeline
    compiles for inference, so one ``pass_names`` ordering serves both
    :func:`compile_training` and :func:`compile_forward`.
    """

    name: str = "pass"
    training_only: bool = False

    @abc.abstractmethod
    def run(self, ctx: PassContext) -> None:
        """Advance ``ctx.state``; may rewrite IR or attach plans."""

    def summary(self, ctx: PassContext) -> str:
        """One-line description of what happened (for PassRecord)."""
        return ""


def _ir_node_count(ctx: PassContext) -> int:
    """Total IR size currently held by the context (fwd + bwd)."""
    total = 0
    forward = ctx.state.get("forward")
    if forward is not None:
        total += len(forward.nodes)
    decision = ctx.state.get("decision")
    if decision is not None:
        total += len(decision.combined_backward.nodes)
    elif ctx.state.get("training_graph") is not None:
        total += len(ctx.state["training_graph"].backward.nodes)
    return total


class PassManager:
    """Runs a pass sequence, recording per-pass deltas and timings."""

    def __init__(self, passes: Sequence[Pass]) -> None:
        self.passes: List[Pass] = list(passes)

    def run(self, ctx: PassContext) -> PassContext:
        for p in self.passes:
            if p.training_only and not ctx.training:
                continue
            before = _ir_node_count(ctx)
            t0 = time.perf_counter()
            p.run(ctx)
            elapsed = time.perf_counter() - t0
            ctx.records.append(
                PassRecord(
                    name=p.name,
                    seconds=elapsed,
                    nodes_before=before,
                    nodes_after=_ir_node_count(ctx),
                    summary=p.summary(ctx),
                )
            )
        return ctx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PassManager({[p.name for p in self.passes]})"


def build_pipeline(strategy: Any, *, training: bool = True) -> PassManager:
    """Instantiate the pass sequence a strategy selects.

    Uses the strategy's ``pass_names`` when set, else the defaults.
    Each name resolves through :data:`repro.registry.PASSES` to a Pass
    subclass instantiated with no arguments; every built-in pass reads
    its parameters from ``ctx.strategy`` unless constructed with
    explicit overrides.
    """
    names = getattr(strategy, "pass_names", None) or (
        DEFAULT_TRAINING_PASSES if training else DEFAULT_FORWARD_PASSES
    )
    passes = []
    for entry in names:
        if isinstance(entry, Pass):
            passes.append(entry)
            continue
        obj = PASSES.get(entry) if isinstance(entry, str) else entry
        passes.append(obj() if isinstance(obj, type) or callable(obj) else obj)
    return PassManager(passes)


# ======================================================================
# Built-in passes
# ======================================================================
@register_pass("reorganize")
class ReorganizePass(Pass):
    """§4 propagation postponement, gated by the strategy's scope."""

    name = "reorganize"

    def __init__(self, scope: Optional[str] = None) -> None:
        self.scope = scope

    def run(self, ctx: PassContext) -> None:
        scope = self.scope or ctx.strategy.reorg_scope
        module = ctx.require("forward")
        applies = scope == "full" or (
            scope == "library"
            and ctx.model is not None
            and ctx.model.dgl_library_reorganized
        )
        if applies:
            rewritten = reorganize(module)
            # reorganize() returns the input object untouched when no
            # pair matched; only an actual rewrite has been CSE'd.
            ctx.state["reorganized"] = rewritten is not module
            ctx.state["forward"] = rewritten
        else:
            ctx.state["reorganized"] = False

    def summary(self, ctx: PassContext) -> str:
        return "rewrote" if ctx.state.get("reorganized") else "no-op"


@register_pass("cse")
class CSEPass(Pass):
    """Fold structurally identical nodes (one projection per vertex).

    :func:`~repro.opt.reorganize.reorganize` already folds CSE into its
    rewrite fixpoint, so in the default pipeline this pass only fires
    when a custom pass has flagged ``needs_cse`` — construct with
    ``force=True`` (or set the flag) to sweep unconditionally.
    """

    name = "cse"

    def __init__(self, force: bool = False) -> None:
        self.force = force

    def run(self, ctx: PassContext) -> None:
        if self.force or ctx.state.get("needs_cse"):
            ctx.state["forward"] = common_subexpression_eliminate(
                ctx.require("forward")
            )
            ctx.state["needs_cse"] = False
            ctx.state["_cse_ran"] = True

    def summary(self, ctx: PassContext) -> str:
        return "swept" if ctx.state.pop("_cse_ran", False) else "no-op"


@register_pass("autodiff")
class AutodiffPass(Pass):
    """Appendix B: derive the backward module in the same operator IR."""

    name = "autodiff"
    training_only = True

    def run(self, ctx: PassContext) -> None:
        ctx.state["training_graph"] = differentiate(ctx.require("forward"))

    def summary(self, ctx: PassContext) -> str:
        tg = ctx.state["training_graph"]
        return f"{len(tg.saved_values)} saved values"


@register_pass("recompute")
class RecomputePlanPass(Pass):
    """§6 stash-vs-recompute decision plus the final stash set."""

    name = "recompute"
    training_only = True

    def __init__(
        self,
        policy: Optional[str] = None,
        boundary_mode: Optional[str] = None,
    ) -> None:
        self.policy = policy
        self.boundary_mode = boundary_mode

    def run(self, ctx: PassContext) -> None:
        strategy = ctx.strategy
        forward = ctx.require("forward")
        tg = ctx.require("training_graph")
        policy = self.policy or strategy.recompute_policy
        boundary = _boundary_values(
            forward,
            strategy,
            mode=self.boundary_mode
            or strategy.recompute_boundary_mode
            or strategy.fusion_mode,
        )
        decision = plan_recompute(tg, policy=policy, boundary_values=boundary)

        # The stash is, definitionally, every forward-produced value the
        # (recompute-spliced) backward module consumes — regardless of
        # which policy decided it.  The save-everything scope
        # additionally keeps every forward kernel output alive.
        produced = {o for node in forward.nodes for o in node.outputs}
        stash = [n for n in decision.combined_backward.inputs if n in produced]
        if strategy.stash_scope == "all_boundary":
            stash = _dedup(list(boundary) + stash)
        ctx.state["decision"] = decision
        ctx.state["stash"] = stash

    def summary(self, ctx: PassContext) -> str:
        d = ctx.state["decision"]
        return f"{len(ctx.state['stash'])} stashed, {len(d.recomputed)} recomputed"


@register_pass("fusion")
class FusionPass(Pass):
    """§5 unified-thread-mapping kernel partitioning (both passes)."""

    name = "fusion"

    def __init__(
        self,
        mode: Optional[str] = None,
        prefer_mapping: Optional[str] = None,
    ) -> None:
        self.mode = mode
        self.prefer_mapping = prefer_mapping

    def run(self, ctx: PassContext) -> None:
        strategy = ctx.strategy
        mode = self.mode or strategy.fusion_mode
        mapping = self.prefer_mapping or strategy.prefer_mapping
        keep = ctx.require("stash") if ctx.training else ()
        ctx.state["fwd_plan"] = plan_module(
            ctx.require("forward"), mode=mode, prefer_mapping=mapping, keep=keep
        )
        if ctx.training:
            ctx.state["bwd_plan"] = plan_module(
                ctx.require("decision").combined_backward,
                mode=mode,
                prefer_mapping=mapping,
                keep=(),
            )

    def summary(self, ctx: PassContext) -> str:
        fwd = len(ctx.state["fwd_plan"].kernels)
        if "bwd_plan" in ctx.state:
            return f"{fwd} fwd + {len(ctx.state['bwd_plan'].kernels)} bwd kernels"
        return f"{fwd} kernels"


# ----------------------------------------------------------------------
def _boundary_values(forward, strategy, *, mode: str) -> List[str]:
    """Forward values written to DRAM under the strategy's own fusion."""
    probe = plan_module(
        forward, mode=mode, prefer_mapping=strategy.prefer_mapping, keep=()
    )
    writes: List[str] = []
    for i in range(len(probe.kernels)):
        writes.extend(probe.kernel_io(i).writes)
    return _dedup(writes)


def _dedup(names: Sequence[str]) -> List[str]:
    return list(dict.fromkeys(names))
