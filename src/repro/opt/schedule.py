"""Peak-aware kernel scheduling: reorder launches to shrink the ledger.

Fusion (§5) decides *which* nodes share a kernel; it emits kernels in
whatever topological order the group DAG walk produced.  That order is
one of many valid schedules, and the §6 memory ledger — each boundary
value resident from its producing kernel to its last consumer — makes
the choice material: launching a producer early parks its output in
DRAM across every unrelated kernel scheduled in between.

:func:`schedule_kernels` re-sorts a plan's kernels by greedy list
scheduling over the liveness intervals: at every step, among the
dependency-ready kernels, pick the one whose execution leaves the
smallest live-byte footprint (several priority rules are tried and the
best simulated peak wins; the incoming order is always a candidate, so
the result is never worse than the input).  Reordering is an accounting
transform like fusion itself — but legality is *proved*, not assumed:
every candidate order passes the race detector
(:func:`repro.analysis.races.check_order`) before it may win, so values
never change (``verify_plan`` holds on the output) and a caller-supplied
conflicting order is rejected with RP-coded diagnostics
(:class:`SchedulingRaceError`).

The pass form (``schedule_memory``) slots after ``fusion`` in an
:class:`~repro.frameworks.strategy.ExecutionStrategy`'s ``pass_names``;
:func:`with_memory_schedule` derives such a strategy from any base.
Sizes at compile time come from a nominal reference workload — the
schedule depends only on *relative* sizes, and vertex/edge tensors keep
their ratio across graphs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exec.plan import ExecPlan
from repro.graph.stats import GraphStats
from repro.ir.module import GRAPH_CONSTANTS
from repro.opt.pipeline import Pass, PassContext
from repro.registry import register_pass

__all__ = [
    "schedule_kernels",
    "simulate_peak_bytes",
    "SchedulingRaceError",
    "ScheduleMemoryPass",
    "with_memory_schedule",
    "REFERENCE_STATS",
]


class SchedulingRaceError(ValueError):
    """A proposed kernel order races (inverts a data dependence).

    Raised when a caller-supplied candidate order fails the race
    detector; ``diagnostics`` carries the RP-coded findings naming the
    exact conflicting kernel pairs
    (:func:`repro.analysis.races.check_order`).
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        lines = "\n".join("  " + d.render() for d in self.diagnostics)
        super().__init__(
            f"candidate kernel order races "
            f"({len(self.diagnostics)} conflict(s)):\n{lines}"
        )

#: Nominal workload used to size values when scheduling at compile time
#: (no concrete stats yet).  Mean degree 8 keeps edge tensors an order
#: of magnitude heavier than vertex tensors, like the real datasets.
REFERENCE_STATS = GraphStats.regular(4096, 8)


# ----------------------------------------------------------------------
def _root_sizes(plan: ExecPlan, stats: GraphStats) -> Dict[str, int]:
    specs = plan.module.specs
    V, E = stats.num_vertices, stats.num_edges
    return {root: specs[root].nbytes(V, E) for root in plan.liveness()}


def _kernel_deps(plan: ExecPlan) -> List[Set[int]]:
    """Kernel-level dependency sets (producer kernels of each input)."""
    producer: Dict[str, int] = {}
    for i, kernel in enumerate(plan.kernels):
        for node in kernel.nodes:
            for o in node.outputs:
                producer[o] = i
    deps: List[Set[int]] = [set() for _ in plan.kernels]
    for i, kernel in enumerate(plan.kernels):
        for node in kernel.nodes:
            for name in node.all_inputs():
                p = producer.get(name)
                if p is None:
                    p = producer.get(plan.root_of(name))
                if p is not None and p != i:
                    deps[i].add(p)
    return deps


def simulate_peak_bytes(
    plan: ExecPlan,
    order: Sequence[int],
    sizes: Dict[str, int],
    *,
    pinned_roots: Set[str] = frozenset(),
) -> int:
    """Ledger peak of executing ``plan``'s kernels in ``order``.

    Thin wrapper over the canonical
    :func:`repro.exec.memory.ledger_walk` simulation (inputs resident
    up front, writes alive until their last consumer under *this*
    order, keep-set/output roots protected) — no
    :class:`~repro.exec.plan.ExecPlan` rebuild per candidate.
    """
    from repro.exec.memory import ledger_walk

    peak, _ = ledger_walk(plan, sizes, order=order, pinned_roots=pinned_roots)
    return peak


def _greedy_order(
    plan: ExecPlan,
    sizes: Dict[str, int],
    protected: Set[str],
    free_names: Set[str],
    priority: str,
) -> List[int]:
    """One greedy list schedule under a ready-kernel priority rule.

    ``priority`` scores each ready kernel by its allocated vs freed
    bytes: ``"net"`` minimises the footprint delta, ``"alloc"``
    minimises the transient allocation, ``"free"`` maximises the bytes
    released.  Ties break on the incoming kernel index, so the result
    is deterministic.
    """
    n = len(plan.kernels)
    deps = _kernel_deps(plan)
    consumers: Dict[str, Set[int]] = {}
    for i in range(n):
        for r in plan.kernel_io(i).reads:
            consumers.setdefault(plan.root_of(r), set()).add(i)

    resident: Set[str] = set()
    for name in list(plan.module.inputs) + list(plan.module.params):
        root = plan.root_of(name)
        if root not in free_names:
            resident.add(root)
    pending = [set(d) for d in deps]
    ready = sorted(i for i in range(n) if not pending[i])
    done: Set[int] = set()
    order: List[int] = []
    while ready:
        best: Optional[Tuple[Tuple[int, int, int], int]] = None
        for i in ready:
            io = plan.kernel_io(i)
            write_roots = {plan.root_of(w) for w in io.writes} - free_names
            alloc = sum(
                sizes[r] for r in write_roots if r not in resident
            )
            freed = 0
            touched = {plan.root_of(x) for x in io.reads} | write_roots
            for r in touched:
                if r in protected or (r not in resident and r not in write_roots):
                    continue
                if consumers.get(r, set()) <= (done | {i}):
                    freed += sizes.get(r, 0)
            if priority == "alloc":
                key = (alloc, alloc - freed, i)
            elif priority == "free":
                key = (-freed, alloc, i)
            else:
                key = (alloc - freed, alloc, i)
            if best is None or key < best[0]:
                best = (key, i)
        i = best[1]
        ready.remove(i)
        done.add(i)
        order.append(i)
        io = plan.kernel_io(i)
        for w in io.writes:
            root = plan.root_of(w)
            if root not in free_names:
                resident.add(root)
        for r in {plan.root_of(x) for x in io.reads} | {
            plan.root_of(w) for w in io.writes
        }:
            if r in resident and r not in protected:
                if consumers.get(r, set()) <= done:
                    resident.discard(r)
        for j in range(n):
            if j not in done and j not in ready:
                pending[j].discard(i)
                if not pending[j]:
                    ready.append(j)
        ready.sort()
    return order


def schedule_kernels(
    plan: ExecPlan,
    stats: Optional[GraphStats] = None,
    *,
    pinned: Sequence[str] = (),
    candidates: Optional[Sequence[Sequence[int]]] = None,
) -> ExecPlan:
    """Reorder a plan's kernels to minimise the ledger's live-byte peak.

    Greedy list scheduling over the liveness intervals, evaluated with
    the exact ledger simulation; the incoming order competes as a
    candidate, so the returned plan's peak is never worse.  Returns the
    input plan object unchanged when no candidate improves it.

    Every order — the greedy ones and any caller-supplied
    ``candidates`` — is validated by the race detector
    (:func:`repro.analysis.races.check_order`) before it may win: a
    caller candidate that inverts a data dependence raises
    :class:`SchedulingRaceError` with the RP-coded diagnostics, and a
    greedy candidate that races (a bug in the priority rules, never by
    design) is discarded rather than trusted.
    """
    from repro.analysis.races import check_order

    if len(plan.kernels) <= 2 and not candidates:
        return plan
    stats = stats if stats is not None else REFERENCE_STATS
    sizes = _root_sizes(plan, stats)
    specs = plan.module.specs
    free_names = {plan.root_of(n) for n in GRAPH_CONSTANTS if n in specs}
    pinned_roots = {plan.root_of(p) for p in pinned}
    protected = {
        plan.root_of(x) for x in set(plan.keep) | set(plan.module.outputs)
    } | pinned_roots

    identity = list(range(len(plan.kernels)))
    pool: List[List[int]] = [identity]
    for supplied in candidates or ():
        supplied = list(supplied)
        diags = check_order(plan, supplied)
        if diags:
            raise SchedulingRaceError(diags)
        pool.append(supplied)
    for priority in ("net", "alloc", "free"):
        order = _greedy_order(plan, sizes, protected, free_names, priority)
        if not check_order(plan, order):
            pool.append(order)
    scored = [
        (simulate_peak_bytes(plan, order, sizes, pinned_roots=pinned_roots), k)
        for k, order in enumerate(pool)
    ]
    best_peak, best_k = min(scored)
    if best_k == 0 or pool[best_k] == identity:
        return plan
    order = pool[best_k]
    return ExecPlan(
        module=plan.module,
        kernels=[plan.kernels[i] for i in order],
        keep=plan.keep,
    )


# ======================================================================
@register_pass("schedule_memory")
class ScheduleMemoryPass(Pass):
    """Pipeline form: reschedule the fused plans for minimum peak.

    Runs after ``fusion`` (it needs ``fwd_plan``/``bwd_plan`` in the
    context) and rewrites them in place.  Compile-time sizes come from
    :data:`REFERENCE_STATS` unless constructed with explicit stats.
    """

    name = "schedule_memory"

    def __init__(self, stats: Optional[GraphStats] = None) -> None:
        self.stats = stats

    def run(self, ctx: PassContext) -> None:
        moved = 0
        for key in ("fwd_plan", "bwd_plan"):
            plan = ctx.state.get(key)
            if plan is None:
                if key == "fwd_plan":
                    ctx.require(key)  # pipeline-aware error
                continue
            scheduled = schedule_kernels(plan, self.stats)
            if scheduled is not plan:
                moved += 1
            ctx.state[key] = scheduled
        ctx.state["_memory_scheduled"] = moved

    def summary(self, ctx: PassContext) -> str:
        moved = ctx.state.pop("_memory_scheduled", 0)
        return f"{moved} plan(s) reordered" if moved else "no-op"


def with_memory_schedule(strategy) -> "object":
    """Derive a strategy that appends the ``schedule_memory`` pass.

    The derived strategy differs from its base only in ``pass_names``
    (and a ``+memsched`` name suffix), so the plan cache keeps the two
    apart while every other knob — fusion scope, recompute policy,
    partitioning — carries over unchanged.
    """
    from repro.opt.pipeline import DEFAULT_TRAINING_PASSES

    names = strategy.pass_names or DEFAULT_TRAINING_PASSES
    if "schedule_memory" in names:
        return strategy
    return replace(
        strategy,
        name=f"{strategy.name}+memsched",
        pass_names=tuple(names) + ("schedule_memory",),
    )
