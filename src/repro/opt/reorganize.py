"""§4 — Propagation-postponed operator reorganization.

The redundancy: ``Scatter(g)`` followed by an expensive ``ApplyEdge(φ)``
executes φ once per *edge*, even though edges sharing an endpoint feed φ
the same vertex feature.  When φ and g satisfy the commutative and
distributive laws (φ a linear map, g a linear combination of its
operands), the pair rewrites to ``ApplyVertex(φ)`` on each operand
followed by the same ``Scatter`` — φ now runs once per *vertex*:

    φ(g(h_u, h_v)) = g(φ(h_u), φ(h_v))            [distributive pair]
    φ(copy_u(h_u)) = copy_u(φ(h_u))               [any φ commutes with copy]
    W[u ‖ v]       = W_l u + W_r v                [GAT concat special case]

For the GAT attention example, the cost drops from ``6|E|f + |E|`` to
``4|V|f + 2|E|`` (§4's arithmetic, asserted in the tests).

The pass rewrites each eligible ``Scatter → expensive Apply`` pair in
place, leaving the original Scatter for any other consumer; a follow-up
CSE + DCE (:mod:`repro.ir.transform`) folds duplicate projections (both
operands of EdgeConv's ``u_sub_v`` are the same tensor, so one
projection suffices) and deletes orphaned scatters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.builder import Builder
from repro.ir.functions import get_apply_fn, get_scatter_fn
from repro.ir.module import Module
from repro.ir.ops import OpKind, OpNode
from repro.ir.transform import common_subexpression_eliminate, prune_dead

__all__ = ["reorganize", "reorganizable_pairs"]


def _is_reorg_apply(node: OpNode) -> bool:
    """Expensive unary linear map — the φ of §4."""
    if node.kind is not OpKind.APPLY:
        return False
    fn = get_apply_fn(node.fn)
    return fn.expensive and fn.is_linear_map and fn.arity == 1


def _scatter_is_distributable(node: OpNode) -> bool:
    if node.kind is not OpKind.SCATTER:
        return False
    fn = get_scatter_fn(node.fn)
    return fn.linear_coeffs is not None or fn.is_concat


def reorganizable_pairs(module: Module) -> List[Tuple[OpNode, OpNode]]:
    """All ``(Scatter, expensive Apply)`` pairs eligible for postponement.

    The §4 sufficient condition, with the concat case requiring the
    apply function to declare a weight-splitting axis.
    """
    producer = module.producer_map()
    pairs = []
    for node in module.nodes:
        if not _is_reorg_apply(node):
            continue
        src = producer.get(node.inputs[0])
        if src is None or not _scatter_is_distributable(src):
            continue
        sfn = get_scatter_fn(src.fn)
        afn = get_apply_fn(node.fn)
        if sfn.is_concat and afn.param_concat_axis is None:
            continue
        pairs.append((src, node))
    return pairs


def reorganize(module: Module) -> Module:
    """Apply propagation postponement everywhere it is legal.

    Returns a new functionally equivalent module; runs CSE and DCE so
    duplicated vertex projections collapse and orphaned scatters vanish.
    Iterates to a fixpoint (a rewrite can expose another pair when
    expensive applies are chained).
    """
    current = module
    for _ in range(len(module.nodes) + 1):
        rewritten = _reorganize_once(current)
        if rewritten is None:
            return current
        current = common_subexpression_eliminate(rewritten)
    raise RuntimeError("reorganize failed to reach a fixpoint")  # pragma: no cover


def _reorganize_once(module: Module) -> Optional[Module]:
    pairs = reorganizable_pairs(module)
    if not pairs:
        return None
    targets: Dict[str, OpNode] = {apply.name: scatter for scatter, apply in pairs}

    b = Builder(module.name)
    for name in module.inputs:
        spec = module.specs[name]
        b.input(name, spec.domain, spec.feat_shape, spec.dtype)
    for name in module.params:
        spec = module.specs[name]
        b.param(name, spec.feat_shape, spec.dtype)

    rename: Dict[str, str] = {}

    def src(name: str) -> str:
        return rename.get(name, name)

    for node in module.nodes:
        scatter = targets.get(node.name)
        if scatter is None:
            b.add_node(
                OpNode(
                    kind=node.kind,
                    fn=node.fn,
                    inputs=tuple(src(i) for i in node.inputs),
                    outputs=node.outputs,
                    params=tuple(src(p) for p in node.params),
                    attrs=dict(node.attrs),
                    macro=node.macro,
                )
            )
            continue
        new_out = _rewrite_pair(b, module, scatter, node, src)
        rename[node.name] = new_out

    for out in module.outputs:
        b.output(src(out))
    return prune_dead(b.build())


def _rewrite_pair(
    b: Builder, module: Module, scatter: OpNode, apply_node: OpNode, src
) -> str:
    """Emit the postponed form; return the replacement value name."""
    sfn = get_scatter_fn(scatter.fn)
    afn = get_apply_fn(apply_node.fn)
    operands = list(scatter.inputs)

    if sfn.is_concat:
        # φ_W(u ‖ v) = φ_{Wl}(u) + φ_{Wr}(v): split the weight along the
        # declared axis at the boundary between the operands' widths.
        u_name, v_name = operands
        fu = module.specs[u_name].feat_shape[-1]
        fv = module.specs[v_name].feat_shape[-1]
        (w_name,) = apply_node.params
        w_shape = module.specs[w_name].feat_shape
        axis = afn.param_concat_axis
        axis = axis + len(w_shape) if axis < 0 else axis
        if w_shape[axis] != fu + fv:
            raise ValueError(
                f"weight axis {axis} of {w_name} has extent {w_shape[axis]}, "
                f"expected {fu + fv} to split over concat operands"
            )
        wl = b.apply(
            "slice_axis", src(w_name),
            attrs={"axis": axis, "start": 0, "stop": fu},
            name=b.fresh(f"{w_name}_l"),
        )
        wr = b.apply(
            "slice_axis", src(w_name),
            attrs={"axis": axis, "start": fu, "stop": fu + fv},
            name=b.fresh(f"{w_name}_r"),
        )
        pu = b.apply(
            apply_node.fn, src(u_name), params=[wl],
            attrs=dict(apply_node.attrs), name=b.fresh(f"reorg_{apply_node.name}_u"),
        )
        pv = b.apply(
            apply_node.fn, src(v_name), params=[wr],
            attrs=dict(apply_node.attrs), name=b.fresh(f"reorg_{apply_node.name}_v"),
        )
        out = b.scatter(
            "u_add_v", u=pu, v=pv, name=b.fresh(f"reorg_{apply_node.name}")
        )
        return out.name

    # Linear-combination scatter: project each operand on vertices, then
    # scatter with the same function (coefficients ride along unchanged).
    projected = []
    for operand in operands:
        p = b.apply(
            apply_node.fn, src(operand),
            params=[src(p) for p in apply_node.params],
            attrs=dict(apply_node.attrs),
            name=b.fresh(f"reorg_{apply_node.name}_{operand}"),
        )
        projected.append(p)
    if sfn.reads_u and sfn.reads_v:
        out = b.scatter(
            scatter.fn, u=projected[0], v=projected[1],
            name=b.fresh(f"reorg_{apply_node.name}"),
        )
    elif sfn.reads_u:
        out = b.scatter(
            scatter.fn, u=projected[0], name=b.fresh(f"reorg_{apply_node.name}")
        )
    else:
        out = b.scatter(
            scatter.fn, v=projected[0], name=b.fresh(f"reorg_{apply_node.name}")
        )
    return out.name
