"""§5 — Kernel partitioning under unified thread mapping.

Thread-mapping background (paper Fig. 5): prior systems bind
edge-centric operators to edge-balanced mappings and vertex-centric
operators to vertex-balanced mappings; two adjacent operators with
different mappings cannot share a kernel because a thread's local data
would belong to an edge in one half and a vertex in the other.  The
paper's insight is that the mapping can be *decoupled* from the operator
type — an edge-centric operator runs fine under vertex-balanced mapping
(loop over a vertex's incident edges, Fig. 5(c)) and a vertex-centric
reduction runs under edge-balanced mapping via atomics (Fig. 5(d)) — so
any chain of graph-related + lightweight-Apply operators can share one
mapping and fuse.

Fusion scopes implemented (used by the baseline strategies):

- ``per_op``      — every node a kernel (handled in exec.plan),
- ``macro``       — framework-builtin fused kernels only: nodes sharing
  a builder macro id (edge-softmax, aggregate/gSpMM) form one kernel —
  this is the DGL model,
- ``edge_chains`` — additionally fuse producer→consumer pairs *of the
  same centricity* (both edge-output or both vertex-output) — the
  FuseGNN model, which "lacks the technique to fuse a vertex-centric
  operator with an edge-centric one",
- ``unified``     — fuse every fusible producer→consumer pair regardless
  of centricity (this paper).

Mapping selection per fused kernel: a kernel containing a
ReduceScatter shape (an internal Gather feeding an internal Scatter)
*must* be vertex-balanced with the vertex feature buffered in shared
memory (§5 "a special case"); otherwise the strategy preference picks
vertex-balanced (no atomics, degree-imbalance exposure) or
edge-balanced (atomic reductions, perfect balance).

Convexity: a fused kernel must be executable as one launch, so no
dataflow path may leave the kernel and re-enter it.  The partitioner
splits any violating node out of its group and repeats to fixpoint.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.exec.plan import Kernel
from repro.ir.module import Module
from repro.ir.ops import OpKind, OpNode
from repro.ir.tensorspec import Domain

__all__ = ["partition_kernels", "FUSION_MODES"]

FUSION_MODES = ("per_op", "macro", "edge_chains", "unified")


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _graph_fusible(node: OpNode, specs) -> bool:
    """May participate in a fused graph kernel (graph-related or
    lightweight Apply on a graph domain).  Views and PARAM/DENSE-domain
    arithmetic stay out — views are free aliases, parameter slicing runs
    on its own tiny kernels.  Lightweight param-grad reductions fuse by
    their *input* domain (they read graph rows, accumulate into a tiny
    buffer)."""
    if node.kind is OpKind.VIEW:
        return False
    if not node.is_fusible():
        return False
    if node.kind is OpKind.PARAM_GRAD:
        return specs[node.inputs[0]].domain in (Domain.VERTEX, Domain.EDGE)
    domain = specs[node.outputs[0]].domain
    return domain in (Domain.VERTEX, Domain.EDGE)


def _centricity(node: OpNode, specs) -> str:
    """'edge' or 'vertex' by output domain (the paper's definition)."""
    return "edge" if specs[node.outputs[0]].domain is Domain.EDGE else "vertex"


def partition_kernels(
    module: Module,
    *,
    mode: str,
    prefer_mapping: str = "vertex",
) -> List[Kernel]:
    """Group module nodes into kernels according to the fusion scope."""
    if mode not in FUSION_MODES:
        raise ValueError(f"unknown fusion mode {mode!r}; allowed {FUSION_MODES}")
    nodes = module.nodes
    specs = module.specs
    index = {node.name: i for i, node in enumerate(nodes)}
    producer = module.producer_map()

    uf = _UnionFind(len(nodes))

    def maybe_union(p: OpNode, c: OpNode) -> None:
        if not (_graph_fusible(p, specs) and _graph_fusible(c, specs)):
            return
        if mode == "edge_chains":
            if _centricity(p, specs) != _centricity(c, specs):
                return
            # Framework-builtin macro kernels are hand-written and
            # closed: FuseGNN-style chain fusion cannot absorb ops into
            # them (or pull their members out).
            if p.macro != c.macro and (p.macro or c.macro):
                return
        uf.union(index[p.name], index[c.name])

    if mode in ("macro", "edge_chains", "unified"):
        # Framework-builtin macro kernels fuse in every system modelled.
        by_macro: Dict[str, List[int]] = defaultdict(list)
        for i, node in enumerate(nodes):
            if node.macro is not None and _graph_fusible(node, specs):
                by_macro[node.macro].append(i)
        for members in by_macro.values():
            for other in members[1:]:
                uf.union(members[0], other)

    if mode in ("edge_chains", "unified"):
        for node in nodes:
            for input_name in node.inputs:
                p = producer.get(input_name)
                if p is not None:
                    maybe_union(p, node)

    groups = _resolve_convexity(nodes, specs, uf, producer, index)
    return _emit_kernels(nodes, specs, groups, prefer_mapping)


# ----------------------------------------------------------------------
def _resolve_convexity(
    nodes, specs, uf: _UnionFind, producer, index
) -> List[int]:
    """Group assignment per node, with convexity violations split out.

    A group is convex iff no node outside the group both depends on the
    group and feeds it.  Violating consumer nodes are evicted into fresh
    singleton groups until a fixpoint is reached (modules here are tens
    of nodes, so the quadratic loop is immaterial).
    """
    group = [uf.find(i) for i in range(len(nodes))]
    fresh = len(nodes)

    for _ in range(len(nodes) + 1):
        violation = _find_violation(nodes, group, producer, index)
        if violation is None:
            return group
        group[violation] = fresh
        fresh += 1
    raise RuntimeError("convexity resolution failed to converge")  # pragma: no cover


def _find_violation(nodes, group, producer, index) -> Optional[int]:
    # depends_on[g] for each node: does this node transitively consume
    # any output of group g produced by a *different* group's path?
    n = len(nodes)
    depends: List[Set[int]] = [set() for _ in range(n)]
    for i, node in enumerate(nodes):
        for input_name in node.all_inputs():
            p = producer.get(input_name)
            if p is None:
                continue
            j = index[p.name]
            depends[i] |= depends[j]
            depends[i].add(group[j])
    for i, node in enumerate(nodes):
        g = group[i]
        members = [j for j in range(n) if group[j] == g]
        if len(members) <= 1:
            continue
        for input_name in node.all_inputs():
            p = producer.get(input_name)
            if p is None:
                continue
            j = index[p.name]
            if group[j] != g and g in depends[j]:
                return i
    return None


# ----------------------------------------------------------------------
def _emit_kernels(nodes, specs, group: List[int], prefer_mapping: str) -> List[Kernel]:
    """Emit kernels in a topological order of the group DAG.

    First-member order is not sufficient: a group may contain a late
    node depending on a singleton group whose only node appears after
    the group's first member.  Kahn's algorithm over inter-group edges
    (with first-member order as the tiebreak) yields a valid schedule —
    convexity resolution guarantees the group DAG is acyclic.
    """
    n = len(nodes)
    producer_group: Dict[str, int] = {}
    for i, node in enumerate(nodes):
        for o in node.outputs:
            producer_group[o] = group[i]

    first_member: Dict[int, int] = {}
    members_of: Dict[int, List[int]] = defaultdict(list)
    for i in range(n):
        members_of[group[i]].append(i)
        first_member.setdefault(group[i], i)

    deps: Dict[int, Set[int]] = {g: set() for g in members_of}
    for i, node in enumerate(nodes):
        for name in node.all_inputs():
            pg = producer_group.get(name)
            if pg is not None and pg != group[i]:
                deps[group[i]].add(pg)

    ready = sorted(
        (g for g in deps if not deps[g]), key=first_member.__getitem__
    )
    emitted: List[int] = []
    remaining = {g: set(d) for g, d in deps.items()}
    while ready:
        g = ready.pop(0)
        emitted.append(g)
        newly = []
        for other, pending in remaining.items():
            if g in pending:
                pending.discard(g)
                if not pending and other not in emitted and other not in ready:
                    newly.append(other)
        ready.extend(sorted(newly, key=first_member.__getitem__))
        ready.sort(key=first_member.__getitem__)
    if len(emitted) != len(members_of):  # pragma: no cover - convexity guards
        raise RuntimeError("cyclic kernel group graph")

    kernels = []
    for g in emitted:
        members = tuple(nodes[i] for i in members_of[g])
        kernels.append(_make_kernel(members, specs, prefer_mapping))
    return kernels


def _make_kernel(members: Tuple[OpNode, ...], specs, prefer_mapping: str) -> Kernel:
    inside = {o for node in members for o in node.outputs}
    has_gather = any(n.kind is OpKind.GATHER for n in members)
    has_scatter = any(n.kind is OpKind.SCATTER for n in members)

    # ReduceScatter shape: an internal Gather result feeding a Scatter
    # in the same kernel forces vertex-balanced mapping (§5).
    reduce_scatter = False
    gather_outputs = {
        o for n in members if n.kind is OpKind.GATHER for o in n.outputs
    }
    for node in members:
        if node.kind is OpKind.SCATTER and any(
            i in gather_outputs for i in node.inputs
        ):
            reduce_scatter = True
            break

    label = "+".join(f"{n.kind.value}:{n.fn}" for n in members[:4])
    if len(members) > 4:
        label += f"+{len(members) - 4}more"

    if all(n.kind is OpKind.VIEW for n in members):
        return Kernel(nodes=members, mapping="none", label=label)
    if len(members) == 1 and members[0].is_expensive():
        return Kernel(nodes=members, mapping="dense", label=label)
    if len(members) == 1 and not members[0].is_graph_related():
        domain = specs[members[0].outputs[0]].domain
        mapping = {
            Domain.EDGE: "edge",
            Domain.VERTEX: "vertex",
        }.get(domain, "dense")
        return Kernel(nodes=members, mapping=mapping, label=label)

    if reduce_scatter:
        mapping = "vertex"
    elif has_gather and has_scatter:
        mapping = prefer_mapping
    elif has_gather:
        mapping = "vertex" if prefer_mapping == "vertex" else "edge"
    elif has_scatter:
        # Pure edge-producing kernels default to edge-balanced (their
        # natural mapping) unless fused with a reduction.
        mapping = "edge"
    else:
        domains = {specs[n.outputs[0]].domain for n in members}
        domains |= {
            specs[n.inputs[0]].domain
            for n in members
            if n.kind is OpKind.PARAM_GRAD
        }
        if Domain.EDGE in domains:
            mapping = "edge"
        elif Domain.VERTEX in domains:
            mapping = "vertex"
        else:
            mapping = "dense"

    atomic = mapping == "edge" and has_gather
    return Kernel(
        nodes=members,
        mapping=mapping,
        label=label,
        atomic=atomic,
        reduce_scatter=reduce_scatter,
    )
