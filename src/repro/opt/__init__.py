"""The paper's three optimization passes plus pipeline assembly.

- :mod:`~repro.opt.reorganize` — §4 propagation-postponed operator
  reorganization (compute redundancy elimination),
- :mod:`~repro.opt.fusion` — §5 unified-thread-mapping kernel
  partitioning (IO elimination),
- :mod:`~repro.opt.recompute` — §6 intermediate-data recomputation
  (training-memory elimination),
- :mod:`~repro.opt.autotune` — per-kernel thread-mapping selection by
  the cost model (§5's "based on performance profiling"),
- :mod:`~repro.opt.schedule` — peak-aware kernel reordering over the §6
  liveness ledger (greedy list scheduling; the ``schedule_memory``
  pass),
- :mod:`~repro.opt.pipeline` — the passes above lifted into composable
  :class:`~repro.opt.pipeline.Pass` objects run by a
  :class:`~repro.opt.pipeline.PassManager` (per-pass IR deltas and
  timings; custom passes/orderings via ``@register_pass``).
"""

from repro.opt.reorganize import reorganize
from repro.opt.fusion import partition_kernels
from repro.opt.recompute import plan_recompute, RecomputeDecision
from repro.opt.autotune import autotune_plan, mapping_choices
from repro.opt.schedule import (
    ScheduleMemoryPass,
    schedule_kernels,
    with_memory_schedule,
)
from repro.opt.pipeline import (
    Pass,
    PassContext,
    PassManager,
    PassRecord,
    build_pipeline,
)

__all__ = [
    "reorganize",
    "partition_kernels",
    "plan_recompute",
    "RecomputeDecision",
    "autotune_plan",
    "mapping_choices",
    "schedule_kernels",
    "ScheduleMemoryPass",
    "with_memory_schedule",
    "Pass",
    "PassContext",
    "PassManager",
    "PassRecord",
    "build_pipeline",
]
