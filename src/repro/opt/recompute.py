"""§6 — Intermediate-data recomputation for training.

Training must make every forward value the backward pass references
available again.  Stashing them all costs the ``O(d × |E|)`` memory the
paper measures at 91.9 % of GAT's total; the paper's criterion trades
memory for compute instead:

    recompute an intermediate iff ComputationCost / MemoryCost ≤ O(1),

i.e. one element can be reproduced with roughly one arithmetic
operation.  Cheap producers (Scatter, lightweight Apply) are recomputed;
reductions (Gather — whose per-element cost is the mean degree) have
their ``O(|V|)`` outputs *checkpointed*.  For GAT's edge-softmax this
lands exactly on the paper's example: store the per-vertex max and
denominator, regenerate every ``O(|E|)`` edge tensor on the fly.

The pass returns a **combined backward module**: the recompute cone
(a slice of forward nodes) spliced in front of the backward nodes.
Because cone nodes are by construction graph-related/lightweight, the
§5 fusion pass later merges them into the backward's fused kernels —
the paper's "fusion–recomputation combo" that keeps regenerated edge
tensors entirely on-chip.

Policies (selected by the baseline strategies):

- ``"recompute"``   — full criterion, anchors = model inputs + params
  (this paper),
- ``"boundary"``    — recomputation allowed only from values already
  written at forward kernel boundaries; models frameworks whose
  hand-written fused backward kernels regenerate their *internal*
  values (DGL's edge-softmax / SpMM backward) but stash everything
  crossing kernels,
- ``"stash_all"``   — no recomputation; every referenced value stashed
  (FuseGNN's "fuse but stash", and the w/o-fusion ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.graph.stats import GraphStats
from repro.ir.autodiff import TrainingGraph
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.ops import OpKind, OpNode

__all__ = ["plan_recompute", "RecomputeDecision", "CHEAP_FLOPS_PER_ELEMENT"]

# §6's O(1) threshold, in FLOPs per recomputed element.  Elementwise
# chains (copy/add/exp/div) cost ≤ 4; the MoNet Gaussian costs ~3r+4
# (≤ 13 for r ≤ 3) and the paper recomputes it; projections cost 2f
# (hundreds) and are never recomputed.
CHEAP_FLOPS_PER_ELEMENT = 16.0

# A tiny stats instance: per-element costs of Scatter/Apply nodes are
# graph-size independent, so any positive extents work for the check.
_UNIT_STATS = GraphStats(
    num_vertices=1,
    num_edges=1,
    in_degrees=np.array([1]),
    out_degrees=np.array([1]),
)


@dataclass
class RecomputeDecision:
    """Outcome of the stash-vs-recompute analysis.

    Attributes
    ----------
    stash:
        Forward values that must be stored across forward → backward
        (saved values judged too costly to recompute, plus checkpoints
        feeding the recompute cone).  Order is forward-definition order.
    recomputed:
        Saved values regenerated during backward instead of stored.
    cone:
        The forward nodes spliced into the backward module, in forward
        order.
    combined_backward:
        Backward module with the cone spliced in front; its inputs are
        gradient seeds + model inputs/params + ``stash``.
    """

    stash: List[str]
    recomputed: List[str]
    cone: List[OpNode]
    combined_backward: Module

    def recompute_flops(self, specs, stats: GraphStats) -> float:
        """Arithmetic overhead paid in backward to regenerate values."""
        return sum(node.flops(specs, stats) for node in self.cone)


def _is_cheap(node: OpNode, specs) -> bool:
    """The §6 criterion for one producer node."""
    if node.kind is OpKind.VIEW:
        return True
    if node.kind is OpKind.GATHER:
        # Per-element cost is the mean in-degree: > O(1).  Checkpoint
        # the O(|V|) output instead (paper's max/denominator choice).
        return False
    if not node.is_fusible():
        return False
    return node.recompute_cost_per_element(specs, _UNIT_STATS) <= CHEAP_FLOPS_PER_ELEMENT


def plan_recompute(
    tg: TrainingGraph,
    *,
    policy: str = "recompute",
    boundary_values: Iterable[str] = (),
) -> RecomputeDecision:
    """Decide stash vs recompute for every saved value of ``tg``.

    Parameters
    ----------
    policy:
        ``"recompute"`` / ``"boundary"`` / ``"stash_all"`` (see module
        docstring).
    boundary_values:
        For ``"boundary"``: forward values already written to DRAM at
        kernel boundaries (available to backward for free).
    """
    if policy not in ("recompute", "boundary", "stash_all"):
        raise ValueError(f"unknown recompute policy {policy!r}")
    forward = tg.forward
    saved = list(tg.saved_values)

    if policy == "stash_all":
        return RecomputeDecision(
            stash=_forward_order(forward, saved),
            recomputed=[],
            cone=[],
            combined_backward=tg.backward,
        )

    anchors: Set[str] = set(forward.inputs) | set(forward.params)
    if policy == "boundary":
        anchors |= set(boundary_values)

    # A value is recomputable iff its producer is cheap.  Its inputs
    # need not be recomputable themselves: a non-recomputable input of a
    # recompute cone simply becomes a *checkpoint* (stashed) — this is
    # how the paper keeps edge-softmax's O(|V|) max/denominator while
    # regenerating every O(|E|) tensor built from them.
    recomputable: Dict[str, bool] = {}
    for node in forward.nodes:
        ok = _is_cheap(node, forward.specs)
        for o in node.outputs:
            recomputable[o] = ok

    stash: Set[str] = set()
    recomputed: List[str] = []
    for s in saved:
        if s in anchors:
            continue  # already materialised for other reasons
        if recomputable.get(s, False):
            recomputed.append(s)
        else:
            stash.add(s)

    # Collect the recompute cone and its checkpoints.
    required: Set[str] = set(recomputed)
    cone_nodes: List[OpNode] = []
    for node in reversed(forward.nodes):
        if not any(o in required for o in node.outputs):
            continue
        cone_nodes.append(node)
        for i in node.inputs:
            if i in anchors:
                continue
            if recomputable.get(i, False):
                required.add(i)
            else:
                stash.add(i)
    cone_nodes.reverse()

    combined = _splice(tg, cone_nodes, recomputed_and_required=required, stash=stash)
    return RecomputeDecision(
        stash=_forward_order(forward, stash),
        recomputed=recomputed,
        cone=cone_nodes,
        combined_backward=combined,
    )


def _forward_order(forward: Module, names: Iterable[str]) -> List[str]:
    wanted = set(names)
    ordered = [n for n in forward.inputs + forward.params if n in wanted]
    for node in forward.nodes:
        ordered.extend(o for o in node.outputs if o in wanted)
    return ordered


def _splice(
    tg: TrainingGraph,
    cone: Sequence[OpNode],
    *,
    recomputed_and_required: Set[str],
    stash: Set[str],
) -> Module:
    """Prepend the recompute cone to the backward module.

    The result's inputs are the backward inputs minus recomputed values,
    plus any cone dependency (checkpoints / model inputs / params) not
    already present.  Value names are shared with the forward module by
    construction, so no renaming is needed.
    """
    forward, backward = tg.forward, tg.backward
    b = Builder(f"{backward.name}_recompute")

    declared: Set[str] = set()

    def declare(name: str) -> None:
        if name in declared:
            return
        spec = forward.specs.get(name) or backward.specs[name]
        b.input(name, spec.domain, spec.feat_shape, spec.dtype)
        declared.add(name)

    # Gradient seeds and non-recomputed backward references.
    for name in backward.inputs:
        if name in recomputed_and_required:
            continue
        declare(name)
    # Cone dependencies not produced by the cone itself.
    cone_defined = {o for node in cone for o in node.outputs}
    for node in cone:
        for name in node.all_inputs():
            if name not in cone_defined:
                declare(name)

    for node in cone:
        b.add_node(node)
    for node in backward.nodes:
        b.add_node(node)
    for out in backward.outputs:
        b.output(out)
    return b.build()
