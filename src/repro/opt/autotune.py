"""Per-kernel thread-mapping autotuning (§5's "based on performance
profiling").

The paper selects between vertex-balanced and edge-balanced mapping for
each fused kernel by profiling.  Here the cost model *is* the profiler:
for every graph kernel whose mapping is free (no internal ReduceScatter
— that case is pinned to vertex-balanced with shared-memory buffering),
both mappings are evaluated on the target workload/device and the
cheaper one is kept.

The result is a new :class:`~repro.exec.plan.ExecPlan` with identical
kernels up to the ``mapping``/``atomic`` flags — values are unaffected,
only the latency model's view changes (and, through the atomic flag,
the IO-time accounting of reduction writes).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from repro.exec.analytic import kernel_record
from repro.exec.plan import ExecPlan, Kernel
from repro.gpu.cost_model import CostModel
from repro.graph.stats import GraphStats
from repro.ir.ops import OpKind

__all__ = ["autotune_plan", "mapping_choices"]


def mapping_choices(kernel: Kernel) -> Tuple[str, ...]:
    """Legal mappings for a kernel (§5 legality rules)."""
    if kernel.mapping in ("dense", "none"):
        return (kernel.mapping,)
    if kernel.reduce_scatter:
        # An internal Gather feeding a Scatter needs the vertex feature
        # buffered in shared memory: vertex-balanced only.
        return ("vertex",)
    has_gather = any(n.kind is OpKind.GATHER for n in kernel.nodes)
    has_scatter = any(n.kind is OpKind.SCATTER for n in kernel.nodes)
    if has_gather or has_scatter:
        return ("vertex", "edge")
    return (kernel.mapping,)


def _with_mapping(kernel: Kernel, mapping: str) -> Kernel:
    has_gather = any(n.kind is OpKind.GATHER for n in kernel.nodes)
    return replace(
        kernel,
        mapping=mapping,
        atomic=(mapping == "edge" and has_gather),
    )


def autotune_plan(
    plan: ExecPlan,
    stats: GraphStats,
    cost_model: CostModel,
) -> ExecPlan:
    """Pick the cheaper legal mapping for every kernel of ``plan``.

    Kernels are independent in the latency model, so per-kernel argmin
    is globally optimal.  Returns a new plan (the input is unchanged).
    """
    tuned: List[Kernel] = []
    for i, kernel in enumerate(plan.kernels):
        choices = mapping_choices(kernel)
        if len(choices) == 1:
            tuned.append(_with_mapping(kernel, choices[0])
                         if choices[0] != kernel.mapping else kernel)
            continue
        best, best_time = None, None
        for mapping in choices:
            candidate_plan = ExecPlan(
                module=plan.module,
                kernels=[
                    _with_mapping(kernel, mapping) if j == i else k
                    for j, k in enumerate(plan.kernels)
                ],
                keep=plan.keep,
            )
            record = kernel_record(candidate_plan, i, stats)
            t = cost_model.kernel_seconds(record, stats)
            if best_time is None or t < best_time:
                best, best_time = mapping, t
        tuned.append(_with_mapping(kernel, best))
    return ExecPlan(module=plan.module, kernels=tuned, keep=plan.keep)
