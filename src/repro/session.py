"""Fluent entry point: name-based configuration, cached compilation,
and cross-product sweeps.

One configuration::

    import repro

    report = (
        repro.session()
        .model("gat").dataset("cora").strategy("ours").gpu("RTX3090")
        .report(train_steps=5)
    )
    print(report.summary())

Every axis accepts either a registry name (resolved through
:mod:`repro.registry`) or a concrete object (a ``GNNModel`` instance, a
``Dataset``, an ``ExecutionStrategy``, a ``GPUSpec``, or raw
``GraphStats`` via :meth:`Session.stats`).

A sweep over the cross product of registry names::

    sweep = repro.run_sweep(
        models=["gat", "gcn"],
        datasets=["cora", "pubmed"],
        strategies=["dgl-like", "ours"],
        feature_dim=64,
        save_as="my_sweep",        # -> benchmarks/results/my_sweep.json
    )
    print(sweep.table())

Compiled plans are cached per :class:`PlanCache` keyed by *(structural
model signature, strategy name)* — a sweep over N datasets that share
feature/class widths compiles each (model, strategy) pair exactly once,
because the plan depends only on the model's IR, never on the topology
the counters are later evaluated on.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exec.memory import StepMemoryPlan, plan_memory
from repro.exec.profiler import Counters, MiniBatchCounters, MultiGPUCounters
from repro.frameworks import compile_forward, compile_training, get_strategy
from repro.frameworks.strategy import (
    CompiledForward,
    CompiledTraining,
    ExecutionStrategy,
)
from repro.gpu.cluster import Cluster, ClusterCostModel, CommBreakdown, make_cluster
from repro.gpu.cost_model import CostModel, SimulatedOOM
from repro.gpu.spec import GPUSpec, get_gpu
from repro.graph.datasets import Dataset, get_dataset
from repro.graph.partition import (
    PartitionSpec,
    PartitionStats,
    partition_graph,
)
from repro.graph.sampling import plan_minibatches
from repro.graph.stats import GraphStats, expected_field_stats
from repro.ir.serialize import dumps_module
from repro.models.base import GNNModel
from repro.opt.schedule import with_memory_schedule
from repro.registry import MODELS
import repro.models  # noqa: F401  (populates the model registry)

__all__ = [
    "Session",
    "session",
    "PlanCache",
    "model_signature",
    "ExperimentReport",
    "SweepRow",
    "SweepReport",
    "run_sweep",
]


#: Per-instance signature memo — models are immutable once built, so
#: the IR fingerprint never needs recomputing for the same object.
_SIGNATURES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def model_signature(model: GNNModel) -> str:
    """Structural fingerprint of a model's naive IR.

    Two model instances with identical architecture and dimensions hash
    identically, so compiled plans are shared across datasets that agree
    on feature/class widths.
    """
    try:
        return _SIGNATURES[model]
    except (KeyError, TypeError):
        pass
    payload = dumps_module(model.build_module())
    sig = hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]
    try:
        _SIGNATURES[model] = sig
    except TypeError:  # non-weakreferenceable model subclass
        pass
    return sig


class PlanCache:
    """Bounded LRU memo of compiled plans keyed by (model signature,
    strategy, training).

    The strategy enters the key by *value* (it is a frozen dataclass),
    so two strategies sharing a name but differing in any knob never
    alias each other's plans.

    ``capacity`` bounds the number of resident compilations — serving
    hammers this cache (every tenant × strategy resolves through it),
    so it must not grow without limit.  The default is generous enough
    that sweeps over the whole zoo never evict; ``None`` removes the
    bound.  Hit/miss/eviction counters are exposed for reports.
    """

    DEFAULT_CAPACITY = 128

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None: unbounded)")
        self.capacity = capacity
        self._plans: "OrderedDict[Tuple[str, ExecutionStrategy, bool], object]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_compile(
        self,
        model: GNNModel,
        strategy: ExecutionStrategy,
        *,
        training: bool = True,
    ):
        key = (model_signature(model), strategy, training)
        if key in self._plans:
            self.hits += 1
            self._plans.move_to_end(key)
            return self._plans[key]
        self.misses += 1
        compiled = (
            compile_training(model, strategy)
            if training
            else compile_forward(model, strategy)
        )
        self._plans[key] = compiled
        if self.capacity is not None:
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
        return compiled

    def clear(self) -> None:
        self._plans.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)


# ======================================================================
@dataclass
class ExperimentReport:
    """Everything one configuration produced.

    Single-GPU runs leave ``multi`` as ``None``; cluster runs attach the
    per-GPU shards (compute counters + halo traffic per device) and the
    modelled communication/computation time split.
    """

    model: str
    dataset: str
    strategy: str
    gpu: str
    counters: Counters
    latency_s: float
    fits_device: bool
    losses: List[float] = field(default_factory=list)
    final_accuracy: Optional[float] = None
    num_gpus: int = 1
    multi: Optional[MultiGPUCounters] = None
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    #: Sampled mini-batch runs: seed batch size and the per-batch epoch
    #: counters (``counters`` above stays the full-graph reference;
    #: ``latency_s``/``fits_device`` reflect the sampled epoch).
    batch_size: Optional[int] = None
    minibatch: Optional[MiniBatchCounters] = None
    #: Arena memory plan (set when the session scheduled for memory).
    memory: Optional[StepMemoryPlan] = None

    @property
    def comm_fraction_time(self) -> float:
        total = self.compute_seconds + self.comm_seconds
        return self.comm_seconds / total if total > 0 else 0.0

    def summary(self) -> str:
        lines = [
            f"{self.model} on {self.dataset} [{self.strategy}, {self.gpu}]",
            f"  flops          {self.counters.flops / 1e9:10.2f} G",
            f"  dram io        {self.counters.io_bytes / 2**20:10.2f} MiB",
            f"  peak memory    {self.counters.peak_memory_bytes / 2**20:10.2f} MiB"
            + ("" if self.fits_device else "  ** exceeds device DRAM **"),
            f"  stash          {self.counters.stash_bytes / 2**20:10.2f} MiB",
            f"  kernel launches{self.counters.launches:8d}",
            # Mini-batch latency is one sampled *epoch* (a full vertex
            # pass — the unit comparable to a full-graph step).
            f"  modelled {'epoch' if self.minibatch is not None else 'step '} "
            f"{self.latency_s * 1e3:10.2f} ms",
        ]
        if self.memory is not None:
            mem = self.memory
            lines.append(
                f"  arena plan     {mem.arena_bytes / 2**20:10.2f} MiB "
                f"(+ pinned, planned peak "
                f"{mem.planned_peak_bytes / 2**20:.2f} MiB vs ledger "
                f"{mem.ledger_peak_bytes / 2**20:.2f} MiB, "
                f"reuse {mem.reuse_factor:.2f}x)"
            )
        if self.minibatch is not None:
            mb = self.minibatch
            lines.append(
                f"  mini-batch     {self.batch_size} seeds/batch, "
                f"{mb.num_batches} batches/epoch"
            )
            lines.append(
                f"  feature gather {mb.gather_bytes / 2**20:10.2f} MiB/epoch "
                f"(field expansion {mb.expansion:.2f}x)"
            )
            lines.append(
                f"  epoch io       {mb.io_bytes / 2**20:10.2f} MiB "
                "(gathers + kernels; dram io above is the full-graph step)"
            )
            lines.append(
                f"  per-batch peak {mb.peak_memory_bytes / 2**20:10.2f} MiB"
            )
        if self.multi is not None:
            lines.append(f"  gpus           {self.num_gpus:8d}")
            for i, shard in enumerate(self.multi.per_gpu):
                lines.append(
                    f"    gpu{i}: flops {shard.compute.flops / 1e9:.2f} G, "
                    f"io {shard.compute.io_bytes / 2**20:.1f} MiB, "
                    f"peak {shard.compute.peak_memory_bytes / 2**20:.1f} MiB, "
                    f"halo {shard.comm_bytes / 2**20:.2f} MiB"
                )
            lines.append(
                f"  halo exchange  {self.multi.comm_bytes / 2**20:10.2f} MiB "
                f"({self.multi.cut_edges} cut edges)"
            )
            lines.append(
                f"  comm/compute   {self.comm_seconds * 1e3:.2f} ms / "
                f"{self.compute_seconds * 1e3:.2f} ms "
                f"(comm fraction {self.comm_fraction_time * 100:.1f}%)"
            )
        if self.losses:
            lines.append(
                f"  training       {len(self.losses)} steps, "
                f"loss {self.losses[0]:.4f} -> {self.losses[-1]:.4f}"
                + (
                    f", acc {self.final_accuracy:.3f}"
                    if self.final_accuracy is not None
                    else ""
                )
            )
        return "\n".join(lines)


# ======================================================================
class Session:
    """Fluent configuration builder over the unified registries.

    Each setter returns ``self``; terminal methods (:meth:`compile`,
    :meth:`counters`, :meth:`latency_seconds`, :meth:`report`) resolve
    names, compile through the shared :class:`PlanCache`, and evaluate.
    """

    def __init__(self, *, cache: Optional[PlanCache] = None) -> None:
        self._cache = cache if cache is not None else PlanCache()
        self._model: Union[str, GNNModel, None] = None
        self._dataset: Union[str, Dataset, None] = None
        self._stats: Optional[GraphStats] = None
        self._workload: Optional[str] = None
        self._strategy: Union[str, ExecutionStrategy] = "ours"
        self._gpu: Union[str, GPUSpec] = "RTX3090"
        self._cluster: Optional[Cluster] = None
        self._partitioner: Optional[str] = None
        # (workload id, num_parts, method, seed) -> (workload, stats).
        self._pstats_memo: Dict[tuple, tuple] = {}
        self._feature_dim: Optional[int] = None
        # Last (compiled, stats) -> counters, so counters() followed by
        # latency_seconds()/fits() analyses once, not three times.
        self._counters_memo: Optional[tuple] = None
        # Multi-GPU twin: (compiled, partition stats) -> MultiGPUCounters.
        self._multi_memo: Optional[tuple] = None
        # Sampled mini-batch configuration: (batch_size, hops, seed).
        self._minibatch: Optional[Tuple[int, Optional[int], int]] = None
        # (compiled id, batch/hops/seed, workload anchor) -> counters;
        # anchors keep id()s alive exactly like the partition memo.
        self._minibatch_memo: Dict[tuple, tuple] = {}
        # Memory planning: None = ledger accounting only, "memory" =
        # append the schedule_memory pass and price the arena plan.
        self._schedule: Optional[str] = None
        # Kernel backend override: None keeps the strategy's own choice
        # (normally "reference").
        self._backend: Optional[str] = None
        # Feature-storage precision override: None keeps the strategy's
        # own precision (normally "fp32").
        self._precision: Optional[str] = None
        # Async-runtime override: None keeps the strategy's own mode
        # (normally serial).
        self._overlap: Optional[str] = None
        # (compiled id, stats id) -> (compiled, stats, StepMemoryPlan).
        self._memory_memo: Dict[tuple, tuple] = {}
        # Registry-name models resolve once per configuration; the
        # model/dataset/feature_dim setters invalidate this.
        self._resolved_model: Optional[GNNModel] = None

    # -- fluent setters ------------------------------------------------
    def model(self, model: Union[str, GNNModel]) -> "Session":
        """Registry name (needs a dataset for dims) or model instance."""
        self._model = model
        self._resolved_model = None
        return self

    def dataset(self, dataset: Union[str, Dataset]) -> "Session":
        self._dataset = dataset
        self._stats = None
        self._resolved_model = None
        return self

    def stats(self, stats: GraphStats, workload: str = "custom") -> "Session":
        """Evaluate counters on raw ``GraphStats`` (no named dataset)."""
        self._stats = stats
        self._workload = workload
        self._dataset = None
        return self

    def strategy(self, strategy: Union[str, ExecutionStrategy]) -> "Session":
        self._strategy = strategy
        return self

    def schedule(self, mode: Optional[str]) -> "Session":
        """Enable peak-aware memory planning for this configuration.

        ``"memory"`` appends the ``schedule_memory`` pass to the
        resolved strategy's pipeline (kernels reordered for minimum
        ledger peak) and makes every terminal price the arena plan:
        counters carry ``planned_peak_bytes``, :meth:`fits` and
        :class:`~repro.gpu.cost_model.SimulatedOOM` use the planned
        arena footprint, and :meth:`report` attaches the
        :class:`~repro.exec.memory.StepMemoryPlan`.  ``schedule(None)``
        restores plain ledger accounting.
        """
        if mode not in (None, "memory"):
            raise ValueError(
                f"unknown schedule mode {mode!r}; use 'memory' or None"
            )
        self._schedule = mode
        return self

    def backend(self, backend: Optional[str]) -> "Session":
        """Select the kernel backend executing this configuration.

        ``backend`` is a name from
        :func:`repro.exec.kernel_registry.available_backends` —
        ``"reference"`` (alias ``"numpy"``), ``"blocked"``, or an
        optional backend such as ``"numba"``/``"torch"`` when its
        package is installed.  The resolved strategy carries the choice
        (``ExecutionStrategy.backend``), so concrete execution paths —
        :meth:`report` training, :meth:`serve`, direct ``Engine`` runs
        on the compiled plans — all use it.  Analytic counters and
        modelled latency are backend-independent.  ``backend(None)``
        restores the strategy's own (reference) backend.
        """
        if backend is not None:
            from repro.exec.kernel_registry import canonical_backend

            backend = canonical_backend(backend)
        self._backend = backend
        return self

    def precision(self, precision: Optional[str]) -> "Session":
        """Select the feature-storage precision of this configuration.

        ``precision`` is a policy name from
        :mod:`repro.ir.precision` — ``"fp32"`` (the oracle),
        ``"fp16"``/``"bf16"`` half-width feature storage, or ``"int8"``
        per-row quantized feature gathers with fp32 accumulation.  The
        resolved strategy carries the choice
        (``ExecutionStrategy.precision``), so compiled specs, analytic
        IO/memory ledgers, arena slabs, serving cache rows, and
        concrete execution all see the storage dtype.
        ``precision(None)`` restores the strategy's own (fp32)
        precision.
        """
        if precision is not None:
            from repro.ir.precision import canonical_precision

            precision = canonical_precision(precision)
        self._precision = precision
        return self

    def overlap(self, mode: Optional[str]) -> "Session":
        """Select the async-runtime mode of this configuration.

        ``"events"`` schedules compute, halo exchange, and feature
        gathers on overlapping per-GPU virtual-clock channels
        (:mod:`repro.runtime`); ``"threads"`` backs the same hazard-wave
        schedule with a real thread pool.  The resolved strategy
        carries the choice (``ExecutionStrategy.overlap``), so
        concrete multi-GPU execution and :meth:`serve` use it; both
        modes are bit-identical to the serial oracle by contract.
        :meth:`overlap_schedules` reports the modelled timeline and its
        overlap efficiency.  ``overlap(None)`` restores serial
        execution.
        """
        if mode not in (None, "events", "threads"):
            raise ValueError(
                f"unknown overlap mode {mode!r}; use 'events', "
                "'threads', or None"
            )
        self._overlap = mode
        return self

    def gpu(self, gpu: Union[str, GPUSpec]) -> "Session":
        """Single device by name/spec (a registered cluster name works too)."""
        self._gpu = gpu
        self._cluster = None
        self._partitioner = None
        return self

    def cluster(
        self,
        gpu: Union[str, GPUSpec, Cluster],
        num_gpus: Optional[int] = None,
        *,
        interconnect_gbps: Optional[float] = None,
        interconnect_latency_us: Optional[float] = None,
        partitioner: Optional[str] = None,
    ) -> "Session":
        """Target ``num_gpus`` copies of a GPU joined by an interconnect.

        ``gpu`` is a registry name, a :class:`GPUSpec`, or a prebuilt
        :class:`Cluster` (then ``num_gpus`` must be omitted).
        ``partitioner`` overrides the strategy's partition method
        (``"hash"`` / ``"range"`` / ``"greedy"``).
        """
        if isinstance(gpu, Cluster):
            if num_gpus is not None and num_gpus != gpu.num_gpus:
                raise ValueError(
                    f"cluster {gpu.name!r} has {gpu.num_gpus} GPUs, "
                    f"cannot override to {num_gpus}"
                )
            self._cluster = gpu
        else:
            if num_gpus is None:
                raise ValueError("cluster() needs num_gpus for a GPU name/spec")
            self._cluster = make_cluster(
                gpu,
                num_gpus,
                interconnect_gbps=interconnect_gbps,
                interconnect_latency_us=interconnect_latency_us,
            )
        self._gpu = self._cluster.gpu
        # Each cluster() call is authoritative: omitting the partitioner
        # falls back to the strategy's PartitionSpec rather than a value
        # left over from an earlier configuration.
        self._partitioner = partitioner
        return self

    def minibatch(
        self,
        batch_size: Optional[int],
        hops: Optional[int] = None,
        *,
        seed: int = 0,
    ) -> "Session":
        """Evaluate sampled mini-batch training instead of full-graph.

        Per epoch the workload is covered by random seed batches of
        ``batch_size`` vertices, each expanded to its ``hops``-hop
        receptive field (default: the compiled model's message-passing
        depth).  Counter/latency terminals then report *epoch* totals
        with per-batch peak memory — concrete datasets sample exact
        batches (seeded by ``seed``), stats-only workloads use the
        degree-model field estimate.  ``minibatch(None)`` restores
        full-graph evaluation.  Mini-batch accounting is single-GPU;
        combine with :meth:`gpu`, not :meth:`cluster`.
        """
        if batch_size is None:
            self._minibatch = None
            return self
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if hops is not None and hops < 0:
            raise ValueError("hops must be non-negative")
        self._minibatch = (int(batch_size), hops, seed)
        return self

    def feature_dim(self, dim: Optional[int]) -> "Session":
        """Input-width override for registry models (default: published)."""
        self._feature_dim = dim
        self._resolved_model = None
        return self

    def cache(self, cache: PlanCache) -> "Session":
        """Share a plan cache with other sessions (sweeps do this)."""
        self._cache = cache
        return self

    @property
    def plan_cache(self) -> PlanCache:
        return self._cache

    # -- resolution ----------------------------------------------------
    def resolve_strategy(self) -> ExecutionStrategy:
        s = self._strategy
        resolved = get_strategy(s) if isinstance(s, str) else s
        if self._schedule == "memory":
            resolved = with_memory_schedule(resolved)
        if self._backend is not None and resolved.backend != self._backend:
            resolved = replace(resolved, backend=self._backend)
        if self._precision is not None and resolved.precision != self._precision:
            resolved = replace(resolved, precision=self._precision)
        if self._overlap is not None and resolved.overlap != self._overlap:
            resolved = replace(resolved, overlap=self._overlap)
        return resolved

    def resolve_gpu(self) -> GPUSpec:
        g = self._gpu
        resolved = get_gpu(g) if isinstance(g, str) else g
        if isinstance(resolved, Cluster):
            return resolved.gpu
        return resolved

    def resolve_cluster(self) -> Optional[Cluster]:
        """The target cluster, if this session is multi-GPU."""
        if self._cluster is not None:
            return self._cluster
        g = self._gpu
        resolved = get_gpu(g) if isinstance(g, str) else g
        return resolved if isinstance(resolved, Cluster) else None

    def resolve_partition_stats(self) -> PartitionStats:
        """Degree-level partition summary for the configured cluster.

        Workloads with a concrete graph are partitioned exactly (the
        strategy's partition method, default hash); stats-only
        workloads use the expected hash-partition model.  Results are
        memoised per (workload, part count, method, seed).
        """
        cluster = self.resolve_cluster()
        num_parts = cluster.num_gpus if cluster is not None else 1
        strategy = self.resolve_strategy()
        spec = strategy.partition if strategy.partition is not None else PartitionSpec()
        method = self._partitioner or spec.method
        ds = self.resolve_dataset()
        # Key on workload object identity (the anchor is stored in the
        # value to keep its id() from being recycled): two datasets
        # sharing a name must never alias each other's partitions.
        anchor = ds if ds is not None else self._stats
        key = (id(anchor), num_parts, method, spec.seed)
        memo = self._pstats_memo.get(key)
        if memo is not None and memo[0] is anchor:
            return memo[1]
        if ds is not None and ds.has_concrete_graph:
            gp = partition_graph(
                ds.graph(), num_parts, method=method, seed=spec.seed
            )
            pstats = PartitionStats.from_partition(gp)
        else:
            pstats = PartitionStats.from_stats(self.resolve_stats(), num_parts)
        self._pstats_memo[key] = (anchor, pstats)
        return pstats

    def resolve_dataset(self) -> Optional[Dataset]:
        d = self._dataset
        if isinstance(d, str):
            return get_dataset(d)
        return d

    def resolve_stats(self) -> GraphStats:
        if self._stats is not None:
            return self._stats
        ds = self.resolve_dataset()
        if ds is None:
            raise ValueError(
                "session has no workload: call .dataset(name) or "
                ".stats(graph_stats) before evaluating counters"
            )
        return ds.stats

    def resolve_model(self) -> GNNModel:
        m = self._model
        if m is None:
            raise ValueError("session has no model: call .model(name_or_instance)")
        if not isinstance(m, str):
            return m
        if self._resolved_model is not None:
            return self._resolved_model
        ds = self.resolve_dataset()
        if ds is None:
            raise ValueError(
                f"model {m!r} is a registry name and needs a dataset for "
                "its feature/class dimensions; call .dataset(...) first "
                "or pass a constructed model instance"
            )
        in_dim = self._feature_dim if self._feature_dim is not None else ds.feature_dim
        self._resolved_model = MODELS.get(m)(in_dim, ds.num_classes)
        return self._resolved_model

    # -- terminal operations -------------------------------------------
    def compile(self, *, training: bool = True):
        """Compile (or fetch from the plan cache) the configured pair."""
        return self._cache.get_or_compile(
            self.resolve_model(), self.resolve_strategy(), training=training
        )

    def compile_forward(self) -> CompiledForward:
        return self.compile(training=False)

    def analyze(
        self,
        *,
        training: Optional[bool] = None,
        lint: bool = True,
        checkers=None,
    ):
        """Statically analyze this configuration before running it.

        Compiles the session (training when the strategy supports it),
        bundles every artifact — plans, arena memory plans, partition
        stats, the analytic comm schedule — and runs the registered
        checkers (:mod:`repro.analysis`) over the bundle.  Returns an
        :class:`~repro.analysis.diagnostics.AnalysisReport` whose
        ``ok`` property proves the RP-coded invariants hold: kernel
        orders race-free, arena slabs overlap-free under the ledger
        watermark, logical dtypes confined to storage, every ghost read
        covered by exactly one exchange.  ``lint=False`` skips the
        determinism source lint (zoo sweeps lint the trees once
        instead of once per target).
        """
        from repro.analysis import Analyzer, build_bundle

        bundle = build_bundle(self, training=training, lint=lint)
        return Analyzer(checkers).run(bundle)

    def memory_plan(self, *, training: bool = True) -> StepMemoryPlan:
        """Arena memory plan of the configured pair on the workload.

        Plans every phase of the compiled configuration on the resolved
        stats (:func:`repro.exec.memory.plan_memory`), pinning the
        model's inputs and parameters — user-owned memory outside the
        arena.  With :meth:`schedule` set to ``"memory"`` the planned
        plans are the memory-scheduled ones; without it the fusion
        order is planned as-is.  Memoised per (compiled, stats).
        """
        return self._memory_plan_compiled(
            self.compile(training=training), self.resolve_stats(), training
        )

    def _memory_plan_compiled(
        self, compiled, stats: GraphStats, training: bool
    ) -> StepMemoryPlan:
        """Memoised planning for an already-compiled pair (no extra
        plan-cache traffic — sweeps pin one compile call per combo)."""
        key = (id(compiled), id(stats), training)
        memo = self._memory_memo.get(key)
        if memo is not None and memo[0] is compiled and memo[1] is stats:
            return memo[2]
        pinned = list(compiled.forward.inputs) + list(compiled.forward.params)
        if training:
            smp = StepMemoryPlan(
                forward=plan_memory(compiled.fwd_plan, stats, pinned=pinned),
                backward=plan_memory(compiled.bwd_plan, stats, pinned=pinned),
            )
        else:
            smp = StepMemoryPlan(
                forward=plan_memory(compiled.plan, stats, pinned=pinned)
            )
        self._memory_memo[key] = (compiled, stats, smp)
        return smp

    def counters(self, *, training: bool = True) -> Counters:
        compiled = self.compile(training=training)
        stats = self.resolve_stats()
        memo = self._counters_memo
        if memo is not None and memo[0] is compiled and memo[1] is stats:
            return memo[2]
        counters = compiled.counters(stats)
        if self._schedule == "memory":
            # Price the arena plan: the cost model's DRAM check then
            # uses the deliverable (pinned + packed arena) footprint.
            smp = self._memory_plan_compiled(compiled, stats, training)
            counters.forward.planned_peak_bytes = (
                smp.forward.planned_peak_bytes
            )
            if counters.backward is not None and smp.backward is not None:
                counters.backward.planned_peak_bytes = (
                    smp.backward.planned_peak_bytes
                )
        self._counters_memo = (compiled, stats, counters)
        return counters

    def multi_counters(self, *, training: bool = True) -> MultiGPUCounters:
        """Per-GPU counters + halo traffic (requires a cluster)."""
        if self.resolve_cluster() is None:
            raise ValueError(
                "session targets a single GPU: call .cluster(name, n) "
                "before asking for multi-GPU counters"
            )
        compiled = self.compile(training=training)
        pstats = self.resolve_partition_stats()
        memo = self._multi_memo
        if memo is not None and memo[0] is compiled and memo[1] is pstats:
            return memo[2]
        multi = compiled.multi_counters(pstats)
        self._multi_memo = (compiled, pstats, multi)
        return multi

    def _minibatch_schedule(self, compiled) -> List[Tuple[int, GraphStats]]:
        """One epoch's (num_seeds, field_stats) pairs for the workload."""
        batch_size, hops, seed = self._minibatch
        if hops is None:
            from repro.train.minibatch import receptive_hops  # lazy: cheap import path

            hops = receptive_hops(compiled.forward)
        ds = self.resolve_dataset()
        rng = np.random.default_rng(seed)
        if ds is not None and ds.has_concrete_graph:
            graph = ds.graph()
            return [
                (mb.num_seeds, mb.subgraph.stats())
                for mb in plan_minibatches(graph, batch_size, hops, rng=rng)
            ]
        stats = self.resolve_stats()
        V = stats.num_vertices
        b = min(batch_size, V)
        sizes = [b] * (V // b) + ([V % b] if V % b else [])
        return [
            (n, expected_field_stats(stats, n, hops, rng=rng)) for n in sizes
        ]

    def minibatch_counters(self, *, training: bool = True) -> MiniBatchCounters:
        """Per-batch epoch counters (requires :meth:`minibatch`).

        Exact on concrete datasets (sampled schedules), degree-model
        realisations on stats-only workloads.  ``counters()`` keeps
        returning the full-graph reference for comparison.
        """
        if self._minibatch is None:
            raise ValueError(
                "session evaluates full-graph: call .minibatch(batch_size) "
                "before asking for mini-batch counters"
            )
        if self.resolve_cluster() is not None:
            raise ValueError(
                "mini-batch accounting is single-GPU: configure .gpu(...) "
                "instead of .cluster(...)"
            )
        compiled = self.compile(training=training)
        ds = self.resolve_dataset()
        anchor = ds if ds is not None else self.resolve_stats()
        key = (id(compiled), self._minibatch, id(anchor))
        memo = self._minibatch_memo.get(key)
        if memo is not None and memo[0] is compiled and memo[1] is anchor:
            return memo[2]
        stats = self.resolve_stats()
        counters = compiled.minibatch_counters(
            self._minibatch_schedule(compiled),
            num_vertices=stats.num_vertices,
        )
        self._minibatch_memo[key] = (compiled, anchor, counters)
        return counters

    def minibatch_latency_seconds(self, *, training: bool = True) -> float:
        """Modelled epoch time: per-batch kernels + feature gathers."""
        return CostModel(self.resolve_gpu()).minibatch_latency_seconds(
            self.minibatch_counters(training=training)
        )

    def comm_breakdown(self, *, training: bool = True) -> CommBreakdown:
        """Communication-vs-computation time split on the cluster."""
        cluster = self.resolve_cluster()
        if cluster is None:
            raise ValueError("comm_breakdown() needs a cluster configuration")
        return ClusterCostModel(cluster).breakdown(
            self.multi_counters(training=training),
            self.resolve_partition_stats(),
        )

    def overlap_schedules(self, *, training: bool = True) -> list:
        """Overlapped per-phase timelines on the cluster.

        Builds one :class:`~repro.runtime.overlap.OverlapSchedule` per
        plan phase (forward, and backward when training) — compute and
        halo exchange placed on overlapping per-GPU channels, with the
        serialized baseline and the overlap-efficiency ratio attached.
        With :meth:`schedule` set to ``"memory"`` the arena plan joins
        the hazard analysis, so slab reuse is honoured when deciding
        what may overlap.
        """
        from repro.runtime.overlap import build_overlap_schedule

        cluster = self.resolve_cluster()
        if cluster is None:
            raise ValueError(
                "overlap_schedules() needs a cluster configuration"
            )
        compiled = self.compile(training=training)
        pstats = self.resolve_partition_stats()
        smp = (
            self._memory_plan_compiled(
                compiled, self.resolve_stats(), training
            )
            if self._schedule == "memory"
            else None
        )
        phases = (
            [("forward", compiled.fwd_plan), ("backward", compiled.bwd_plan)]
            if training
            else [("forward", compiled.plan)]
        )
        schedules = []
        for phase, plan in phases:
            mp = None
            if smp is not None:
                mp = smp.forward if phase == "forward" else smp.backward
            schedules.append(
                build_overlap_schedule(
                    plan, pstats, cluster, memory_plan=mp, phase=phase
                )
            )
        return schedules

    def latency_seconds(self, *, training: bool = True) -> float:
        if self._minibatch is not None:
            return self.minibatch_latency_seconds(training=training)
        cluster = self.resolve_cluster()
        if cluster is not None:
            return self.comm_breakdown(training=training).total_seconds
        return CostModel(self.resolve_gpu()).latency_seconds(
            self.counters(training=training), self.resolve_stats()
        )

    def fits(self, *, training: bool = True) -> bool:
        if self._minibatch is not None:
            # The per-batch maximum is the footprint that must fit.
            return CostModel(self.resolve_gpu()).fits(
                self.minibatch_counters(training=training)
            )
        cluster = self.resolve_cluster()
        if cluster is not None:
            return ClusterCostModel(cluster).fits(
                self.multi_counters(training=training)
            )
        return CostModel(self.resolve_gpu()).fits(self.counters(training=training))

    # -- naming (for reports) ------------------------------------------
    def _model_label(self) -> str:
        return self._model if isinstance(self._model, str) else self._model.name

    def _dataset_label(self) -> str:
        if isinstance(self._dataset, str):
            return self._dataset
        if self._dataset is not None:
            return self._dataset.name
        return self._workload or "custom"

    def _strategy_label(self) -> str:
        s = self._strategy
        return s if isinstance(s, str) else s.name

    def _gpu_label(self) -> str:
        cluster = self.resolve_cluster()
        if cluster is not None:
            return cluster.name
        g = self._gpu
        return g if isinstance(g, str) else g.name

    def report(self, *, train_steps: int = 0, seed: int = 0) -> ExperimentReport:
        """Counters + modelled latency, optionally with concrete training.

        Training uses the dataset's ground-truth labels when it provides
        them; stats-only or label-less datasets fall back to synthetic
        labels planted from a hidden projection of the features.
        """
        from repro.train import Adam, MiniBatchTrainer, Trainer  # local: keeps import cheap

        compiled = self.compile(training=True)
        stats = self.resolve_stats()
        counters = self.counters(training=True)
        cluster = self.resolve_cluster()
        if self._minibatch is not None:
            mc = self.minibatch_counters()
            report = ExperimentReport(
                model=self._model_label(),
                dataset=self._dataset_label(),
                strategy=self._strategy_label(),
                gpu=self._gpu_label(),
                counters=counters,
                latency_s=self.minibatch_latency_seconds(),
                fits_device=CostModel(self.resolve_gpu()).fits(mc),
                batch_size=self._minibatch[0],
                minibatch=mc,
            )
        elif cluster is not None:
            multi = self.multi_counters()
            breakdown = ClusterCostModel(cluster).breakdown(
                multi, self.resolve_partition_stats()
            )
            report = ExperimentReport(
                model=self._model_label(),
                dataset=self._dataset_label(),
                strategy=self._strategy_label(),
                gpu=self._gpu_label(),
                counters=counters,
                latency_s=breakdown.total_seconds,
                fits_device=ClusterCostModel(cluster).fits(multi),
                num_gpus=cluster.num_gpus,
                multi=multi,
                compute_seconds=breakdown.compute_seconds,
                comm_seconds=breakdown.comm_seconds,
            )
        else:
            cost = CostModel(self.resolve_gpu())
            report = ExperimentReport(
                model=self._model_label(),
                dataset=self._dataset_label(),
                strategy=self._strategy_label(),
                gpu=self._gpu_label(),
                counters=counters,
                latency_s=cost.latency_seconds(counters, stats),
                fits_device=cost.fits(counters),
            )
        if self._schedule == "memory":
            report.memory = self.memory_plan(training=True)

        if train_steps > 0:
            ds = self.resolve_dataset()
            if ds is None:
                raise ValueError(
                    "concrete training needs a dataset with a graph; "
                    "this session was configured with raw stats only"
                )
            graph = ds.graph()
            in_dim = (
                self._feature_dim
                if self._feature_dim is not None
                else ds.feature_dim
            )
            feats = ds.features(dim=in_dim, seed=seed)
            if ds.has_labels:
                labels = ds.labels()
            else:
                rng = np.random.default_rng(seed)
                labels = (
                    feats @ rng.normal(size=(in_dim, ds.num_classes))
                ).argmax(axis=1)
            opt = Adam(lr=0.01)
            if self._minibatch is not None:
                # One "step" = one sampled epoch (a full vertex pass,
                # the unit comparable to a full-graph step).
                batch_size, hops, mb_seed = self._minibatch
                mb_trainer = MiniBatchTrainer(
                    compiled, graph,
                    batch_size=batch_size, hops=hops,
                    precision="float32", seed=seed, sampler_seed=mb_seed,
                )
                acc = None
                for _ in range(train_steps):
                    epoch = mb_trainer.train_epoch(feats, labels, opt)
                    report.losses.append(epoch.loss)
                    acc = epoch.accuracy
                report.final_accuracy = acc
                return report
            trainer = Trainer(compiled, graph, precision="float32", seed=seed)
            acc = None
            for _ in range(train_steps):
                loss, acc = trainer.train_step(feats, labels, opt)
                report.losses.append(loss)
            report.final_accuracy = acc
        return report

    def run(self, *, train_steps: int = 0, seed: int = 0) -> ExperimentReport:
        """Evaluate the configuration (alias of :meth:`report`).

        On a cluster configuration the report carries per-GPU counters,
        halo-exchange bytes, and the comm/compute time split.
        """
        return self.report(train_steps=train_steps, seed=seed)

    # -- online serving ------------------------------------------------
    def serve(
        self,
        *,
        num_requests: int = 256,
        qps: float = 1000.0,
        seeds_per_request: int = 1,
        slo_s: float = 0.05,
        arrival: str = "poisson",
        burst: int = 8,
        zipf_alpha: float = 0.0,
        max_batch: int = 8,
        max_wait_s: float = 0.002,
        scheduler: str = "edf",
        cache_rows: int = 0,
        hops: Optional[int] = None,
        seed: int = 0,
        execute: bool = True,
        update_frac: float = 0.0,
        compact_every: Optional[int] = None,
        update_edge_frac: float = 0.5,
        new_vertex_prob: float = 0.0,
    ):
        """Serve a synthetic online workload against this configuration.

        Generates an open-loop request stream (``arrival`` ``"poisson"``
        or ``"bursty"``, Zipf-skewed seed popularity under
        ``zipf_alpha``, all randomness seeded by ``seed``), compiles
        the forward plan through the shared :class:`PlanCache`, and
        runs it through an :class:`~repro.serve.server.InferenceServer`
        on the configured GPU (or :meth:`cluster` pool) — micro-batched
        under ``max_batch``/``max_wait_s``, feature-cached with
        ``cache_rows`` LRU rows, scheduled by ``scheduler``
        (``"edf"``/``"fifo"``).  With :meth:`schedule` set to
        ``"memory"`` every batch executes through a per-field arena
        plan and the device-fit check uses the planned footprint.

        ``update_frac > 0`` makes the run *dynamic*: the stream comes
        from :func:`repro.dyn.mixed_workload` (each event is a write
        with that probability — ``update_edge_frac`` of them edge
        insertions, the rest feature puts; ``new_vertex_prob`` lets
        edge batches bring new vertices), and the server answers each
        batch against the graph/feature snapshot current at its
        dispatch time, compacting the delta overlay every
        ``compact_every`` applied deltas.  Dynamic runs require the
        ``"poisson"`` arrival process (the mixed stream is one Poisson
        event process; a bursty variant would need its own generator).

        Returns the :class:`~repro.serve.metrics.ServeReport` —
        p50/p95/p99 latency, throughput, SLO violations, cache hit
        rate, per-GPU utilization, plus (on dynamic runs) version,
        staleness, invalidation and mutation-IO accounting.  Requires a
        dataset with a concrete graph (serving answers real seed
        vertices).
        """
        from repro.serve import (  # local: keeps base import cheap
            BatchPolicy,
            InferenceServer,
            bursty_workload,
            poisson_workload,
        )

        if not 0.0 <= update_frac < 1.0:
            raise ValueError("update_frac must lie in [0, 1)")
        ds = self.resolve_dataset()
        if ds is None or not ds.has_concrete_graph:
            raise ValueError(
                "serving needs a dataset with a concrete graph; "
                "stats-only workloads cannot answer seed requests"
            )
        graph = ds.graph()
        in_dim = (
            self._feature_dim if self._feature_dim is not None else ds.feature_dim
        )
        features = ds.features(dim=in_dim, seed=seed)
        compiled = self.compile(training=False)
        tenant = self._model_label()
        rng = np.random.default_rng(seed)
        updates = None
        if update_frac > 0.0:
            from repro.dyn import mixed_workload  # local: keeps import cheap

            if arrival != "poisson":
                raise ValueError(
                    "dynamic serving (update_frac > 0) uses one Poisson "
                    "event stream; arrival must be 'poisson'"
                )
            workload, updates = mixed_workload(
                num_requests,
                qps=qps,
                num_vertices=graph.num_vertices,
                feature_dim=in_dim,
                update_frac=update_frac,
                seeds_per_request=seeds_per_request,
                slo_s=slo_s,
                tenant=tenant,
                zipf_alpha=zipf_alpha,
                edge_frac=update_edge_frac,
                new_vertex_prob=new_vertex_prob,
                rng=rng,
            )
        elif arrival == "poisson":
            workload = poisson_workload(
                num_requests,
                qps=qps,
                num_vertices=graph.num_vertices,
                seeds_per_request=seeds_per_request,
                slo_s=slo_s,
                tenant=tenant,
                zipf_alpha=zipf_alpha,
                rng=rng,
            )
        elif arrival == "bursty":
            workload = bursty_workload(
                num_requests,
                qps=qps,
                num_vertices=graph.num_vertices,
                burst=burst,
                seeds_per_request=seeds_per_request,
                slo_s=slo_s,
                tenant=tenant,
                zipf_alpha=zipf_alpha,
                rng=rng,
            )
        else:
            raise ValueError(
                f"unknown arrival process {arrival!r}; use 'poisson' or 'bursty'"
            )
        cluster = self.resolve_cluster()
        server = InferenceServer(
            graph,
            features,
            {tenant: compiled},
            gpu=cluster if cluster is not None else self.resolve_gpu(),
            batch_policy=BatchPolicy(max_batch=max_batch, max_wait_s=max_wait_s),
            scheduler_policy=scheduler,
            cache_rows=cache_rows,
            hops=hops,
            memory_plan=self._schedule == "memory",
            execute=execute,
            overlap=self.resolve_strategy().overlap,
        )
        return server.serve(workload, updates=updates, compact_every=compact_every)


def session(*, cache: Optional[PlanCache] = None) -> Session:
    """Start a fluent configuration: ``repro.session().model("gat")…``."""
    return Session(cache=cache)


# ======================================================================
# Sweeps
# ======================================================================
@dataclass
class SweepRow:
    """One (model, dataset, strategy, gpu[, gpu count]) sweep point.

    Multi-GPU rows carry the interconnect traffic and the time share
    spent communicating; single-GPU rows leave them at zero.
    """

    model: str
    dataset: str
    strategy: str
    gpu: str
    flops: float
    io_bytes: int
    peak_memory_bytes: int
    stash_bytes: int
    launches: int
    latency_s: float
    fits_device: bool
    num_gpus: int = 1
    comm_bytes: int = 0
    comm_fraction: float = 0.0
    #: Sampled mini-batch rows: seed batch size (None = full-graph) and
    #: the epoch's feature-gather traffic; io/peak columns then report
    #: epoch totals / per-batch maxima.
    batch_size: Optional[int] = None
    gather_bytes: int = 0
    #: Memory-scheduled rows compile with the ``schedule_memory`` pass.
    #: Single-GPU full-graph rows additionally price the arena:
    #: ``arena_bytes`` is the planned footprint and
    #: ``peak_memory_bytes`` the deliverable (pinned + arena) peak.
    #: Multi-GPU and mini-batch rows keep ledger pricing (of the
    #: memory-scheduled plans) and leave ``arena_bytes`` at 0.
    schedule: Optional[str] = None
    arena_bytes: int = 0
    #: Kernel backend executing the row's plans (``run_sweep(backend=
    #: [...])``).  Analytic columns are backend-independent; the column
    #: labels which backend concrete execution paths would use.
    backend: Optional[str] = None
    #: Feature-storage precision of the row's plans (``run_sweep(
    #: precision=[...])``).  Unlike ``backend``, precision changes the
    #: analytic columns: IO, peak memory, stash, and gather bytes all
    #: shrink with the storage dtype.
    precision: Optional[str] = None
    #: Online-serving rows (``run_sweep(serve_qps=[...])``): the offered
    #: load and the tail-latency/SLO/cache metrics of the served
    #: stream; ``latency_s`` then reports the *mean* request latency
    #: and io/peak columns the served totals / per-batch maxima.
    serve_qps: Optional[float] = None
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    cache_hit_rate: float = 0.0
    slo_violation_rate: float = 0.0
    #: Dynamic-serving rows (``run_sweep(update_frac=[...])``): the
    #: write share of the event stream, the mean snapshot staleness at
    #: delivery, and the invalidation re-gather bill.
    update_frac: Optional[float] = None
    staleness_s: float = 0.0
    invalidated_bytes: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "strategy": self.strategy,
            "gpu": self.gpu,
            "flops": self.flops,
            "io_bytes": self.io_bytes,
            "peak_memory_bytes": self.peak_memory_bytes,
            "stash_bytes": self.stash_bytes,
            "launches": self.launches,
            "latency_s": self.latency_s,
            "fits_device": self.fits_device,
            "num_gpus": self.num_gpus,
            "comm_bytes": self.comm_bytes,
            "comm_fraction": self.comm_fraction,
            "batch_size": self.batch_size,
            "gather_bytes": self.gather_bytes,
            "schedule": self.schedule,
            "arena_bytes": self.arena_bytes,
            "backend": self.backend,
            "precision": self.precision,
            "serve_qps": self.serve_qps,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "cache_hit_rate": self.cache_hit_rate,
            "slo_violation_rate": self.slo_violation_rate,
            "update_frac": self.update_frac,
            "staleness_s": self.staleness_s,
            "invalidated_bytes": self.invalidated_bytes,
        }


@dataclass
class SweepReport:
    """Tabular result of :func:`run_sweep` plus plan-cache accounting."""

    rows: List[SweepRow]
    cache_hits: int
    cache_misses: int
    feature_dim: Optional[int] = None

    def by(self, **match) -> List[SweepRow]:
        return [
            r
            for r in self.rows
            if all(getattr(r, k) == v for k, v in match.items())
        ]

    def table(self) -> str:
        from repro.bench.report import format_table  # lazy: avoids cycle

        with_batches = any(r.batch_size is not None for r in self.rows)
        with_schedules = any(r.schedule is not None for r in self.rows)
        with_backends = any(r.backend is not None for r in self.rows)
        with_precisions = any(r.precision is not None for r in self.rows)
        with_serving = any(r.serve_qps is not None for r in self.rows)
        with_updates = any(r.update_frac is not None for r in self.rows)
        body = [
            [
                r.model, r.dataset, r.strategy, r.gpu,
            ]
            + ([str(r.batch_size) if r.batch_size is not None else "full"]
               if with_batches else [])
            + ([r.schedule or "-"] if with_schedules else [])
            + ([r.backend or "-"] if with_backends else [])
            + ([r.precision or "-"] if with_precisions else [])
            + [
                f"{r.flops / 1e9:.2f}",
                f"{r.io_bytes / 2**20:.1f}",
                f"{r.peak_memory_bytes / 2**20:.1f}",
                "yes" if r.fits_device else "OOM",
                f"{r.latency_s * 1e3:.2f}",
            ]
            + (
                [
                    f"{r.serve_qps:.0f}" if r.serve_qps is not None else "-",
                    f"{r.p50_latency_s * 1e3:.2f}",
                    f"{r.p99_latency_s * 1e3:.2f}",
                    f"{r.cache_hit_rate * 100:.0f}%",
                    f"{r.slo_violation_rate * 100:.0f}%",
                ]
                if with_serving
                else []
            )
            + (
                [
                    (
                        f"{r.update_frac:.2f}"
                        if r.update_frac is not None
                        else "-"
                    ),
                    f"{r.staleness_s * 1e3:.2f}",
                    f"{r.invalidated_bytes / 2**20:.3f}",
                ]
                if with_updates
                else []
            )
            for r in self.rows
        ]
        return format_table(
            ["model", "dataset", "strategy", "gpu"]
            + (["batch"] if with_batches else [])
            + (["sched"] if with_schedules else [])
            + (["backend"] if with_backends else [])
            + (["prec"] if with_precisions else [])
            + ["GFLOPs", "IO MiB", "mem MiB", "fits", "ms/step"]
            + (["qps", "p50 ms", "p99 ms", "hit", "viol"]
               if with_serving else [])
            + (["upd", "stale ms", "inval MiB"] if with_updates else []),
            body,
            title=(
                f"sweep ({len(self.rows)} rows; plan cache "
                f"{self.cache_misses} compiles, {self.cache_hits} hits)"
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "generated_unix": time.time(),
            "feature_dim": self.feature_dim,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "rows": [r.to_dict() for r in self.rows],
        }

    def save_json(self, name: str, results_dir: Optional[str] = None) -> str:
        """Persist under ``benchmarks/results/<name>.json`` (or a dir)."""
        from repro.bench.report import RESULTS_DIR  # lazy: avoids cycle

        directory = results_dir or RESULTS_DIR
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{name}.json")
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def run_sweep(
    models: Sequence[Union[str, GNNModel]],
    datasets: Sequence[Union[str, Dataset]],
    strategies: Sequence[Union[str, ExecutionStrategy]] = ("ours",),
    gpus: Sequence[Union[str, GPUSpec]] = ("RTX3090",),
    *,
    num_gpus: Sequence[int] = (1,),
    interconnect_gbps: Optional[float] = None,
    batch_size: Union[None, int, Sequence[Optional[int]]] = None,
    minibatch_hops: Optional[int] = None,
    minibatch_seed: int = 0,
    schedule: Union[None, str, Sequence[Optional[str]]] = None,
    backend: Union[None, str, Sequence[Optional[str]]] = None,
    precision: Union[None, str, Sequence[Optional[str]]] = None,
    serve_qps: Optional[Sequence[float]] = None,
    serve_requests: int = 192,
    serve_seeds: int = 1,
    serve_slo_s: float = 0.05,
    serve_cache_rows: int = 0,
    serve_zipf_alpha: float = 0.0,
    serve_scheduler: str = "edf",
    serve_seed: int = 0,
    update_frac: Optional[Sequence[float]] = None,
    serve_compact_every: Optional[int] = 4,
    feature_dim: Optional[int] = None,
    training: bool = True,
    cache: Optional[PlanCache] = None,
    save_as: Optional[str] = None,
    results_dir: Optional[str] = None,
) -> SweepReport:
    """Analytic sweep over the cross product of the six axes.

    Plans are cached by (model signature, strategy): datasets sharing
    feature/class widths reuse one compilation, and GPUs always do (the
    device only enters at latency-model time).  Training sweeps skip
    inference-only strategies (e.g. ``huang-like``); pass
    ``training=False`` to compare forward passes instead.

    ``num_gpus`` sweeps cluster sizes: each entry > 1 evaluates the
    same compiled plans on a partitioned workload (``<gpu>xN`` rows
    with halo-exchange traffic and the comm time fraction).  The plan
    is independent of the partitioning, so every GPU count reuses one
    compilation per (model, strategy).

    ``batch_size`` sweeps sampled mini-batch training: an int or a
    sequence mixing ints with ``None`` (full-graph).  Mini-batch rows
    report *epoch* totals — IO including receptive-field feature
    gathers, per-batch peak memory — against the directly comparable
    full-graph step.  The plan never depends on the sampled topology,
    so every batch size reuses one compilation per (model, strategy);
    single-GPU only (combine with ``num_gpus=(1,)``).

    ``schedule`` sweeps memory planning: a mode or a sequence mixing
    ``"memory"`` with ``None`` (ledger accounting).  Scheduled rows
    compile with the ``schedule_memory`` pass appended (a separate
    plan-cache entry); single-GPU full-graph rows report the planned
    ``arena_bytes`` and show the deliverable (pinned + arena) peak in
    the memory column, while multi-GPU and mini-batch rows price the
    memory-scheduled plans with the ordinary ledger.

    ``backend`` sweeps the kernel backend: a name or a sequence mixing
    names from :func:`repro.exec.kernel_registry.available_backends`
    with ``None`` (the strategy's own reference backend).  Analytic
    counters are backend-independent — backend rows label which
    registry backend concrete execution (training, serving, direct
    ``Engine`` runs on the compiled plans) would use, and each named
    backend compiles through its own plan-cache entry.

    ``precision`` sweeps feature-storage precision: a policy name or a
    sequence mixing ``"fp32"``/``"fp16"``/``"bf16"``/``"int8"`` with
    ``None`` (the strategy's own fp32).  Unlike ``backend``, precision
    *changes* the analytic columns — gather IO, peak memory, and stash
    bytes shrink with the storage dtype — and each precision compiles
    through its own plan-cache entry.

    ``serve_qps`` sweeps online serving instead of offline steps: each
    configuration serves a fixed-seed Poisson request stream at every
    offered load (``serve_requests`` requests of ``serve_seeds`` seeds,
    SLO ``serve_slo_s``, ``serve_cache_rows`` LRU feature-cache rows)
    through :meth:`Session.serve`.  Rows carry the qps plus
    p50/p95/p99 latency, cache hit rate and SLO-violation share;
    ``latency_s`` is the mean request latency and io/peak columns the
    served totals / per-batch maxima.  A multi-GPU entry in
    ``num_gpus`` serves on the cluster as a pool (whole batches per
    GPU).  Serving is forward-only and cannot be combined with
    ``batch_size``.

    ``update_frac`` (requires ``serve_qps``) adds the dynamic-serving
    axis: each entry serves a mixed read/write stream with that write
    share (:func:`repro.dyn.mixed_workload`), compacting the delta
    overlay every ``serve_compact_every`` applied deltas.  Rows then
    carry the update fraction, mean snapshot staleness, and the
    invalidation re-gather bytes; ``0.0`` entries are ordinary static
    rows for direct comparison.
    """
    cache = cache if cache is not None else PlanCache()
    hits0, misses0 = cache.hits, cache.misses
    if batch_size is None or isinstance(batch_size, int):
        batch_options: Tuple[Optional[int], ...] = (batch_size,)
    else:
        batch_options = tuple(batch_size)
    if schedule is None or isinstance(schedule, str):
        schedule_options: Tuple[Optional[str], ...] = (schedule,)
    else:
        schedule_options = tuple(schedule)
    if backend is None or isinstance(backend, str):
        backend_options: Tuple[Optional[str], ...] = (backend,)
    else:
        backend_options = tuple(backend)
    if precision is None or isinstance(precision, str):
        precision_options: Tuple[Optional[str], ...] = (precision,)
    else:
        precision_options = tuple(precision)
    if any(b is not None for b in batch_options) and any(
        n > 1 for n in num_gpus
    ):
        raise ValueError(
            "mini-batch sweeps are single-GPU: batch_size cannot be "
            "combined with num_gpus > 1"
        )
    if serve_qps is not None and any(b is not None for b in batch_options):
        raise ValueError(
            "serving sweeps are request-driven: serve_qps cannot be "
            "combined with batch_size"
        )
    if update_frac is not None and serve_qps is None:
        raise ValueError(
            "update_frac sweeps dynamic serving: it requires serve_qps"
        )
    update_options: Tuple[Optional[float], ...] = (
        (None,) if update_frac is None else tuple(update_frac)
    )
    rows: List[SweepRow] = []
    for m in models:
        for d in datasets:
            s = Session(cache=cache).model(m).dataset(d)
            s.feature_dim(feature_dim)
            stats = s.resolve_stats()
            for strat in strategies:
                s.strategy(strat)
                for sched, bk, prec in (
                    (sc, b, pr)
                    for sc in schedule_options
                    for b in backend_options
                    for pr in precision_options
                ):
                    s.schedule(sched)
                    s.backend(bk)
                    s.precision(prec)
                    resolved = s.resolve_strategy()
                    row_backend = resolved.backend if bk is not None else None
                    row_precision = (
                        resolved.precision if prec is not None else None
                    )
                    if training and not resolved.supports_training:
                        continue
                    counters = s.counters(training=training)
                    # Reuse the compiled pair the counters memo just
                    # resolved rather than calling s.compile() again:
                    # the plan cache counts every get_or_compile call,
                    # and sweep hit/miss accounting is pinned to one
                    # call per combination (same-module private access;
                    # counters() guarantees the memo matches).
                    compiled = s._counters_memo[0]
                    arena = (
                        s._memory_plan_compiled(
                            compiled, stats, training
                        ).arena_bytes
                        if sched == "memory"
                        else 0
                    )
                    # Partitioned counters are GPU-independent: one walk
                    # per partition serves every device in `gpus`.
                    multi_memo: Dict[int, MultiGPUCounters] = {}
                    for g in gpus:
                        for n in num_gpus:
                            if n <= 1:
                                # A registered cluster name in `gpus`
                                # still resolves to the cluster path
                                # below.
                                s.gpu(g)
                            else:
                                s.cluster(g, n, interconnect_gbps=interconnect_gbps)
                            cluster = s.resolve_cluster()
                            if serve_qps is not None:
                                # Serving rows: a fixed-seed request
                                # stream per offered load; counters are
                                # the served totals (paid gathers +
                                # kernel traffic, per-batch peak).
                                for q, uf in (
                                    (q, uf)
                                    for q in serve_qps
                                    for uf in update_options
                                ):
                                    try:
                                        rep = s.serve(
                                            num_requests=serve_requests,
                                            qps=q,
                                            seeds_per_request=serve_seeds,
                                            slo_s=serve_slo_s,
                                            zipf_alpha=serve_zipf_alpha,
                                            cache_rows=serve_cache_rows,
                                            scheduler=serve_scheduler,
                                            seed=serve_seed,
                                            execute=False,
                                            update_frac=uf or 0.0,
                                            compact_every=(
                                                serve_compact_every
                                                if uf
                                                else None
                                            ),
                                        )
                                    except SimulatedOOM:
                                        # Keep sweeping: an unservable
                                        # configuration is an OOM row,
                                        # like every other sweep path.
                                        rows.append(
                                            SweepRow(
                                                model=s._model_label(),
                                                dataset=s._dataset_label(),
                                                strategy=s._strategy_label(),
                                                gpu=s._gpu_label(),
                                                flops=0.0,
                                                io_bytes=0,
                                                peak_memory_bytes=0,
                                                stash_bytes=0,
                                                launches=0,
                                                latency_s=0.0,
                                                fits_device=False,
                                                num_gpus=(
                                                    cluster.num_gpus
                                                    if cluster is not None
                                                    else 1
                                                ),
                                                schedule=sched,
                                                backend=row_backend,
                                                precision=row_precision,
                                                serve_qps=float(q),
                                                update_frac=uf,
                                            )
                                        )
                                        continue
                                    sc = rep.counters
                                    rows.append(
                                        SweepRow(
                                            model=s._model_label(),
                                            dataset=s._dataset_label(),
                                            strategy=s._strategy_label(),
                                            gpu=s._gpu_label(),
                                            flops=sc.flops,
                                            io_bytes=sc.io_bytes,
                                            peak_memory_bytes=sc.device_peak_bytes,
                                            stash_bytes=0,
                                            launches=sc.launches,
                                            latency_s=rep.mean_latency_s,
                                            fits_device=True,
                                            num_gpus=rep.num_gpus,
                                            gather_bytes=sc.gather_bytes,
                                            schedule=sched,
                                            backend=row_backend,
                                            precision=row_precision,
                                            serve_qps=float(q),
                                            p50_latency_s=rep.p50_latency_s,
                                            p95_latency_s=rep.p95_latency_s,
                                            p99_latency_s=rep.p99_latency_s,
                                            cache_hit_rate=rep.cache_hit_rate,
                                            slo_violation_rate=rep.slo_violation_rate,
                                            update_frac=uf,
                                            staleness_s=rep.mean_staleness_s,
                                            invalidated_bytes=rep.gather_invalidated_bytes,
                                        )
                                    )
                                continue
                            if cluster is not None and any(
                                b is not None for b in batch_options
                            ):
                                # A registered cluster name in `gpus`
                                # reaches here with num_gpus == 1;
                                # refuse rather than silently dropping
                                # the batch axis.
                                raise ValueError(
                                    "mini-batch sweeps are single-GPU: "
                                    f"gpu {s._gpu_label()!r} resolves to a "
                                    "cluster, which cannot be combined with "
                                    "batch_size"
                                )
                            if cluster is None:
                                cost = CostModel(s.resolve_gpu())
                                for bs in batch_options:
                                    s.minibatch(bs, minibatch_hops, seed=minibatch_seed)
                                    if bs is None:
                                        rows.append(
                                            SweepRow(
                                                model=s._model_label(),
                                                dataset=s._dataset_label(),
                                                strategy=s._strategy_label(),
                                                gpu=s._gpu_label(),
                                                flops=counters.flops,
                                                io_bytes=counters.io_bytes,
                                                peak_memory_bytes=counters.device_peak_bytes,
                                                stash_bytes=counters.stash_bytes,
                                                launches=counters.launches,
                                                latency_s=cost.latency_seconds(counters, stats),
                                                fits_device=cost.fits(counters),
                                                schedule=sched,
                                                backend=row_backend,
                                                precision=row_precision,
                                                arena_bytes=arena,
                                            )
                                        )
                                        continue
                                    # Mini-batch rows are epoch totals
                                    # (the unit comparable to a
                                    # full-graph step) with per-batch
                                    # peak memory.
                                    mc = s.minibatch_counters(training=training)
                                    rows.append(
                                        SweepRow(
                                            model=s._model_label(),
                                            dataset=s._dataset_label(),
                                            strategy=s._strategy_label(),
                                            gpu=s._gpu_label(),
                                            flops=mc.flops,
                                            io_bytes=mc.io_bytes,
                                            peak_memory_bytes=mc.peak_memory_bytes,
                                            stash_bytes=mc.stash_bytes,
                                            launches=mc.launches,
                                            latency_s=s.minibatch_latency_seconds(
                                                training=training
                                            ),
                                            fits_device=cost.fits(mc),
                                            batch_size=bs,
                                            gather_bytes=mc.gather_bytes,
                                            schedule=sched,
                                            backend=row_backend,
                                            precision=row_precision,
                                        )
                                    )
                                s.minibatch(None)
                                continue
                            pstats = s.resolve_partition_stats()
                            multi = multi_memo.get(id(pstats))
                            if multi is None:
                                multi = compiled.multi_counters(pstats)
                                multi_memo[id(pstats)] = multi
                            breakdown = ClusterCostModel(cluster).breakdown(
                                multi, pstats
                            )
                            rows.append(
                                SweepRow(
                                    model=s._model_label(),
                                    dataset=s._dataset_label(),
                                    strategy=s._strategy_label(),
                                    gpu=s._gpu_label(),
                                    flops=multi.flops,
                                    io_bytes=multi.io_bytes,
                                    peak_memory_bytes=multi.peak_memory_bytes,
                                    stash_bytes=multi.stash_bytes,
                                    launches=multi.launches,
                                    latency_s=breakdown.total_seconds,
                                    fits_device=ClusterCostModel(cluster).fits(multi),
                                    num_gpus=cluster.num_gpus,
                                    comm_bytes=multi.comm_bytes,
                                    # Byte-based traffic share (monotone
                                    # in the GPU count; the time split
                                    # depends on imbalance floors too).
                                    comm_fraction=multi.comm_fraction,
                                    schedule=sched,
                                    backend=row_backend,
                                    precision=row_precision,
                                )
                            )
                s.schedule(None)
                s.backend(None)
                s.precision(None)
    report = SweepReport(
        rows=rows,
        cache_hits=cache.hits - hits0,
        cache_misses=cache.misses - misses0,
        feature_dim=feature_dim,
    )
    if save_as:
        report.save_json(save_as, results_dir)
    return report
