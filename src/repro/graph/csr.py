"""Immutable directed graph with COO / CSR / CSC views.

Conventions used throughout the library
---------------------------------------

* An edge ``(u, e, v)`` points from source ``u`` to destination ``v`` and
  carries a unique integer id ``e`` in ``[0, num_edges)``.
* Every edge-feature tensor is stored in **edge-id (COO) order**.  Kernels
  that reduce over the in-edges of each destination vertex permute edge
  rows through :attr:`Graph.csc_eids` first; kernels reducing over
  out-edges use :attr:`Graph.csr_eids`.
* ``Gather`` in the paper reduces over in-edges (messages arriving at a
  vertex).  The backward pass of ``Scatter`` additionally needs the
  out-edge reduction, which is why both views exist.

The class is deliberately plain: topology only, no features.  Features
live in the execution engine; analytic passes only ever need
:class:`~repro.graph.stats.GraphStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["Graph"]


def _group_edges(
    keys: np.ndarray, num_vertices: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Group edge ids by an endpoint array.

    Returns ``(indptr, eids)`` where ``eids[indptr[v]:indptr[v+1]]`` are
    the ids of edges whose endpoint (``keys``) equals ``v``, and the edge
    ids within each group appear in ascending order (stable sort).
    """
    order = np.argsort(keys, kind="stable").astype(np.int64)
    counts = np.bincount(keys, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, order


@dataclass(frozen=True)
class Graph:
    """A directed graph in COO form with lazily cached CSR/CSC views.

    Parameters
    ----------
    src, dst:
        Integer arrays of shape ``(num_edges,)`` holding the source and
        destination vertex of each edge, indexed by edge id.
    num_vertices:
        Total number of vertices.  Must be strictly greater than every
        entry of ``src`` and ``dst``.

    Notes
    -----
    Self-loops and parallel edges are permitted: nothing in the paper's
    operator set requires simple graphs, and k-NN graphs naturally contain
    parallel edges after symmetrisation.
    """

    src: np.ndarray
    dst: np.ndarray
    num_vertices: int
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=np.int64)
        dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays")
        if src.shape != dst.shape:
            raise ValueError(
                f"src and dst must have equal length, got {src.shape} vs {dst.shape}"
            )
        if self.num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= self.num_vertices:
                raise ValueError(
                    f"edge endpoints must lie in [0, {self.num_vertices}), "
                    f"got range [{lo}, {hi}]"
                )
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.src.shape[0])

    @property
    def in_degrees(self) -> np.ndarray:
        """``in_degrees[v]`` = number of edges whose destination is ``v``."""
        if "in_deg" not in self._cache:
            self._cache["in_deg"] = np.bincount(
                self.dst, minlength=self.num_vertices
            ).astype(np.int64)
        return self._cache["in_deg"]

    @property
    def out_degrees(self) -> np.ndarray:
        """``out_degrees[v]`` = number of edges whose source is ``v``."""
        if "out_deg" not in self._cache:
            self._cache["out_deg"] = np.bincount(
                self.src, minlength=self.num_vertices
            ).astype(np.int64)
        return self._cache["out_deg"]

    # ------------------------------------------------------------------
    # CSC: edges grouped by destination (drives Gather)
    # ------------------------------------------------------------------
    @property
    def csc_indptr(self) -> np.ndarray:
        """Segment offsets of the by-destination grouping."""
        self._build_csc()
        return self._cache["csc_indptr"]

    @property
    def csc_eids(self) -> np.ndarray:
        """Edge-id permutation so edge rows are grouped by destination."""
        self._build_csc()
        return self._cache["csc_eids"]

    @property
    def csc_src(self) -> np.ndarray:
        """Source vertex of each edge, in CSC (by-destination) order."""
        self._build_csc()
        if "csc_src" not in self._cache:
            self._cache["csc_src"] = self.src[self._cache["csc_eids"]]
        return self._cache["csc_src"]

    def _build_csc(self) -> None:
        if "csc_indptr" not in self._cache:
            indptr, eids = _group_edges(self.dst, self.num_vertices)
            self._cache["csc_indptr"] = indptr
            self._cache["csc_eids"] = eids

    # ------------------------------------------------------------------
    # CSR: edges grouped by source (drives backward of Scatter on hu)
    # ------------------------------------------------------------------
    @property
    def csr_indptr(self) -> np.ndarray:
        """Segment offsets of the by-source grouping."""
        self._build_csr()
        return self._cache["csr_indptr"]

    @property
    def csr_eids(self) -> np.ndarray:
        """Edge-id permutation so edge rows are grouped by source."""
        self._build_csr()
        return self._cache["csr_eids"]

    @property
    def csr_dst(self) -> np.ndarray:
        """Destination vertex of each edge, in CSR (by-source) order."""
        self._build_csr()
        if "csr_dst" not in self._cache:
            self._cache["csr_dst"] = self.dst[self._cache["csr_eids"]]
        return self._cache["csr_dst"]

    def _build_csr(self) -> None:
        if "csr_indptr" not in self._cache:
            indptr, eids = _group_edges(self.src, self.num_vertices)
            self._cache["csr_indptr"] = indptr
            self._cache["csr_eids"] = eids

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "Graph":
        """Graph with every edge direction flipped (edge ids preserved)."""
        return Graph(self.dst.copy(), self.src.copy(), self.num_vertices)

    def with_edges(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        *,
        num_new_vertices: int = 0,
        allow_self_loops: bool = True,
        allow_duplicates: bool = True,
    ) -> "Graph":
        """Return a new graph with ``(src, dst)`` edges appended.

        The appended edges receive the highest edge ids in order, so
        existing edge-feature tensors remain aligned as a prefix —
        the invariant every append path (self-loops, symmetrisation,
        disjoint unions, dynamic-graph deltas) relies on.
        ``num_new_vertices`` grows the vertex set first; appended
        endpoints may reference the new ids.

        Validation knobs (both permissive by default, matching the
        class convention that self-loops and parallel edges are legal):

        - ``allow_self_loops=False`` rejects appended edges with
          ``src == dst``;
        - ``allow_duplicates=False`` rejects appended edges that
          duplicate an existing edge or repeat within the batch.
        """
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1 or src.shape != dst.shape:
            raise ValueError(
                "appended src and dst must be 1-D arrays of equal length"
            )
        if num_new_vertices < 0:
            raise ValueError("num_new_vertices must be non-negative")
        num_vertices = self.num_vertices + int(num_new_vertices)
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= num_vertices:
                raise ValueError(
                    f"appended edge endpoints must lie in [0, {num_vertices}), "
                    f"got range [{lo}, {hi}]"
                )
            if not allow_self_loops:
                loops = np.nonzero(src == dst)[0]
                if loops.size:
                    raise ValueError(
                        f"appended edges contain {loops.size} self-loop(s) "
                        f"(first at batch index {int(loops[0])}: vertex "
                        f"{int(src[loops[0]])}) but allow_self_loops=False"
                    )
            if not allow_duplicates:
                # One scalar key per (src, dst) pair makes both checks a
                # vectorised set operation.
                key = src * np.int64(num_vertices) + dst
                uniq, counts = np.unique(key, return_counts=True)
                if (counts > 1).any():
                    raise ValueError(
                        f"appended edges contain {int((counts > 1).sum())} "
                        "pair(s) duplicated within the batch but "
                        "allow_duplicates=False"
                    )
                if self.num_edges:
                    existing = self.src * np.int64(num_vertices) + self.dst
                    dup = np.isin(uniq, existing)
                    if dup.any():
                        raise ValueError(
                            f"appended edges duplicate {int(dup.sum())} "
                            "existing edge(s) but allow_duplicates=False"
                        )
        return Graph(
            np.concatenate([self.src, src]),
            np.concatenate([self.dst, dst]),
            num_vertices,
        )

    def add_self_loops(self) -> "Graph":
        """Return a new graph with one self-loop appended per vertex.

        The new self-loop edges receive the highest edge ids, so existing
        edge-feature tensors remain aligned as a prefix.
        """
        loops = np.arange(self.num_vertices, dtype=np.int64)
        return self.with_edges(loops, loops)

    def symmetrize(self) -> "Graph":
        """Return the graph with each edge also present in reverse."""
        return self.with_edges(self.dst, self.src)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def stats(self) -> "GraphStats":
        """Degree-level summary consumed by analytic counters."""
        from repro.graph.stats import GraphStats

        return GraphStats(
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            in_degrees=self.in_degrees.copy(),
            out_degrees=self.out_degrees.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
