"""Subgraph sampling for mini-batch training.

The paper trains full-graph, but Reddit-scale GNNs are commonly trained
on sampled subgraphs (GraphSAGE / Cluster-GCN style).  This module
provides the vertex-induced-subgraph machinery that makes the library's
single-graph training loop usable in mini-batch form:

- :func:`induced_subgraph` — restrict a graph to a vertex subset,
- :func:`khop_neighborhood` — the receptive field of a seed set (an
  L-layer GNN needs the L-hop in-neighbourhood for exact embeddings),
- :func:`random_vertex_batches` — a partition sampler for epochs,
- :func:`plan_minibatches` — one epoch's worth of :class:`MiniBatch`
  schedules (seeds → receptive field → induced subgraph), consumed both
  by the concrete :class:`~repro.train.minibatch.MiniBatchTrainer` and
  by the analytic per-batch walker
  (:func:`repro.exec.analytic.analyze_minibatch`).

Everything composes with the existing engine: a sampled subgraph is
just another :class:`~repro.graph.csr.Graph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.graph.csr import Graph

__all__ = [
    "induced_subgraph",
    "in_neighbours",
    "khop_neighborhood",
    "random_vertex_batches",
    "MiniBatch",
    "plan_minibatches",
]


def induced_subgraph(
    graph: Graph, vertices: np.ndarray
) -> Tuple[Graph, np.ndarray, np.ndarray]:
    """The subgraph induced by ``vertices``.

    Returns ``(subgraph, kept_vertices, kept_edge_ids)``:

    - ``subgraph`` has ``len(kept_vertices)`` vertices, relabeled
      ``0..len-1`` in the order given,
    - ``kept_vertices`` is the (deduplicated, order-preserving) vertex
      list — index new id → old id; slice vertex features with it,
    - ``kept_edge_ids`` are the original COO edge ids retained (in
      ascending edge-id order, so per-destination reduction order
      matches the full graph) — slice edge features with it.

    ``vertices`` must be non-empty after deduplication:
    :class:`~repro.graph.csr.Graph` requires ``num_vertices > 0``, and a
    phantom vertex would desynchronise ``subgraph.num_vertices`` from
    ``len(kept_vertices)``-based feature slicing.  Empty batches raise
    ``ValueError``; callers sampling batches should skip them upstream
    (``random_vertex_batches`` never yields one).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.ndim != 1:
        raise ValueError("vertices must be a 1-D id array")
    if vertices.size == 0:
        raise ValueError(
            "induced_subgraph: empty vertex set — a Graph must have "
            "num_vertices > 0; filter out empty batches before inducing"
        )
    if vertices.min() < 0 or vertices.max() >= graph.num_vertices:
        raise ValueError("vertex ids out of range")
    kept = np.asarray(
        list(dict.fromkeys(vertices.tolist())), dtype=np.int64
    )
    new_id = np.full(graph.num_vertices, -1, dtype=np.int64)
    new_id[kept] = np.arange(kept.size)
    mask = (new_id[graph.src] >= 0) & (new_id[graph.dst] >= 0)
    eids = np.nonzero(mask)[0].astype(np.int64)
    sub = Graph(
        new_id[graph.src[eids]],
        new_id[graph.dst[eids]],
        int(kept.size),
    )
    return sub, kept, eids


def _check_seeds(graph: Graph, seeds: np.ndarray, hops: int) -> np.ndarray:
    if hops < 0:
        raise ValueError("hops must be non-negative")
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    if frontier.size and (
        frontier.min() < 0 or frontier.max() >= graph.num_vertices
    ):
        raise ValueError("seed ids out of range")
    return frontier


def in_neighbours(graph: Graph, frontier: np.ndarray) -> np.ndarray:
    """Sorted unique in-neighbours of a frontier (one expansion hop).

    Gathers every CSC segment of the frontier at once (``np.repeat``
    over ``indptr`` diffs) instead of slicing per vertex — on
    heavy-tailed graphs this is the difference between O(|frontier|)
    Python-level loop steps and a handful of NumPy calls.  Frontier
    ids must lie inside the graph; overlay callers
    (:class:`repro.dyn.delta.DynamicGraph`) filter first.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    if frontier.size == 0:
        return frontier
    indptr = graph.csc_indptr
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.array([], dtype=np.int64)
    # Position p of segment j reads src_by_dst[starts[j] + (p - offsets[j])].
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    index = np.repeat(starts - offsets, counts) + np.arange(total)
    return np.unique(graph.csc_src[index])


def khop_neighborhood(
    graph: Graph, seeds: np.ndarray, hops: int
) -> np.ndarray:
    """Vertices reachable by following ≤ ``hops`` in-edges backwards.

    The receptive field of ``seeds`` under ``hops`` rounds of message
    passing: seeds plus every vertex with a directed path of length
    ≤ hops *into* a seed.  Returned sorted.  Each round is one
    vectorised :func:`in_neighbours` expansion.
    """
    frontier = _check_seeds(graph, seeds, hops)
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[frontier] = True
    for _ in range(hops):
        if frontier.size == 0:
            break
        neighbours = in_neighbours(graph, frontier)
        if neighbours.size == 0:
            break
        fresh = neighbours[~visited[neighbours]]
        visited[fresh] = True
        frontier = fresh
    return np.nonzero(visited)[0].astype(np.int64)


def _khop_neighborhood_reference(
    graph: Graph, seeds: np.ndarray, hops: int
) -> np.ndarray:
    """Pre-vectorisation implementation (per-vertex segment slicing).

    Kept as the oracle for the fuzzed equivalence tests in
    ``tests/graph/test_sampling.py``; not part of the public API.
    """
    frontier = _check_seeds(graph, seeds, hops)
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[frontier] = True
    indptr = graph.csc_indptr
    src_by_dst = graph.csc_src
    for _ in range(hops):
        if frontier.size == 0:
            break
        segments = [
            src_by_dst[indptr[v]:indptr[v + 1]] for v in frontier
        ]
        neighbours = (
            np.unique(np.concatenate(segments))
            if segments
            else np.array([], dtype=np.int64)
        )
        fresh = neighbours[~visited[neighbours]]
        visited[fresh] = True
        frontier = fresh
    return np.nonzero(visited)[0].astype(np.int64)


def random_vertex_batches(
    num_vertices: int,
    batch_size: int,
    *,
    rng: np.random.Generator,
) -> Iterator[np.ndarray]:
    """Yield a random partition of the vertex set in fixed-size batches.

    The degenerate-epoch contract (relied on by
    :class:`~repro.train.minibatch.MiniBatchTrainer` and the analytic
    per-batch walker, which both assume ≥ 1 step per epoch):

    - ``num_vertices`` must be positive — an empty vertex set cannot
      produce a training step, so it raises ``ValueError`` instead of
      silently yielding an empty epoch;
    - ``batch_size > num_vertices`` yields exactly one batch covering
      every vertex (the full-graph limit — one epoch is one step);
    - otherwise batches have exactly ``batch_size`` vertices, except the
      last which may be smaller (never empty).

    One full pass = one epoch of Cluster-GCN-style subgraph training.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if num_vertices <= 0:
        raise ValueError(
            "random_vertex_batches: num_vertices must be positive — an "
            "epoch over an empty vertex set has no training steps"
        )
    order = rng.permutation(num_vertices)
    for start in range(0, num_vertices, batch_size):
        yield order[start:start + batch_size]


# ======================================================================
# Mini-batch schedules
# ======================================================================
@dataclass(frozen=True)
class MiniBatch:
    """One sampled training step: seeds, receptive field, topology.

    Attributes
    ----------
    seeds:
        Original vertex ids whose losses this step optimises.
    vertices:
        The receptive field (sorted original ids): seeds plus their
        ``hops``-hop in-neighbourhood.  Slice vertex features with it —
        these are the rows the step gathers from host feature storage,
        the IO term that dominates sampled training.
    subgraph:
        ``vertices``-induced subgraph, relabeled ``0..len-1`` in
        ``vertices`` order.
    edge_ids:
        Original COO edge ids retained by the induced subgraph.
    seed_index:
        Positions of ``seeds`` within ``vertices`` (= subgraph-local
        seed ids); mask losses with it.
    """

    seeds: np.ndarray
    vertices: np.ndarray
    subgraph: Graph
    edge_ids: np.ndarray
    seed_index: np.ndarray

    @property
    def num_seeds(self) -> int:
        return int(self.seeds.size)

    @property
    def field_size(self) -> int:
        return int(self.vertices.size)

    def seed_mask(self) -> np.ndarray:
        """Boolean mask over subgraph vertices selecting the seeds."""
        mask = np.zeros(self.subgraph.num_vertices, dtype=bool)
        mask[self.seed_index] = True
        return mask


def plan_minibatches(
    graph: Graph,
    batch_size: int,
    hops: int,
    *,
    rng: np.random.Generator,
) -> Iterator[MiniBatch]:
    """One epoch of mini-batch schedules over ``graph``.

    Draws :func:`random_vertex_batches`, expands each batch to its
    :func:`khop_neighborhood` receptive field, and induces the
    subgraph.  Because the field is sorted and ``induced_subgraph``
    preserves ascending edge-id order within destination segments, a
    batch that covers every vertex reproduces the original graph
    exactly — the bit-consistency anchor of the mini-batch trainer.
    """
    for seeds in random_vertex_batches(
        graph.num_vertices, batch_size, rng=rng
    ):
        field = khop_neighborhood(graph, seeds, hops)
        sub, kept, eids = induced_subgraph(graph, field)
        # kept is sorted (khop output), so positions come from bisect.
        seed_index = np.searchsorted(kept, np.sort(seeds))
        yield MiniBatch(
            seeds=np.sort(seeds),
            vertices=kept,
            subgraph=sub,
            edge_ids=eids,
            seed_index=seed_index,
        )
