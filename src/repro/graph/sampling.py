"""Subgraph sampling for mini-batch training.

The paper trains full-graph, but Reddit-scale GNNs are commonly trained
on sampled subgraphs (Cluster-GCN / GraphSAINT style).  This module
provides the vertex-induced-subgraph machinery that makes the library's
single-graph training loop usable in mini-batch form:

- :func:`induced_subgraph` — restrict a graph to a vertex subset,
- :func:`khop_neighborhood` — the receptive field of a seed set (an
  L-layer GNN needs the L-hop in-neighbourhood for exact embeddings),
- :func:`random_vertex_batches` — a partition sampler for epochs.

Everything composes with the existing engine: a sampled subgraph is
just another :class:`~repro.graph.csr.Graph`.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.graph.csr import Graph

__all__ = ["induced_subgraph", "khop_neighborhood", "random_vertex_batches"]


def induced_subgraph(
    graph: Graph, vertices: np.ndarray
) -> Tuple[Graph, np.ndarray, np.ndarray]:
    """The subgraph induced by ``vertices``.

    Returns ``(subgraph, kept_vertices, kept_edge_ids)``:

    - ``subgraph`` has ``len(vertices)`` vertices, relabeled
      ``0..len-1`` in the order given,
    - ``kept_vertices`` is the (deduplicated, order-preserving) vertex
      list — index new id → old id; slice vertex features with it,
    - ``kept_edge_ids`` are the original COO edge ids retained — slice
      edge features with it.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.ndim != 1:
        raise ValueError("vertices must be a 1-D id array")
    if vertices.size and (
        vertices.min() < 0 or vertices.max() >= graph.num_vertices
    ):
        raise ValueError("vertex ids out of range")
    kept = np.asarray(
        list(dict.fromkeys(vertices.tolist())), dtype=np.int64
    )
    new_id = np.full(graph.num_vertices, -1, dtype=np.int64)
    new_id[kept] = np.arange(kept.size)
    mask = (new_id[graph.src] >= 0) & (new_id[graph.dst] >= 0)
    eids = np.nonzero(mask)[0].astype(np.int64)
    sub = Graph(
        new_id[graph.src[eids]],
        new_id[graph.dst[eids]],
        max(int(kept.size), 1),
    )
    return sub, kept, eids


def khop_neighborhood(
    graph: Graph, seeds: np.ndarray, hops: int
) -> np.ndarray:
    """Vertices reachable by following ≤ ``hops`` in-edges backwards.

    The receptive field of ``seeds`` under ``hops`` rounds of message
    passing: seeds plus every vertex with a directed path of length
    ≤ hops *into* a seed.  Returned sorted.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    if frontier.size and (
        frontier.min() < 0 or frontier.max() >= graph.num_vertices
    ):
        raise ValueError("seed ids out of range")
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[frontier] = True
    indptr, eids = graph.csc_indptr, graph.csc_eids
    src_by_dst = graph.csc_src
    for _ in range(hops):
        if frontier.size == 0:
            break
        segments = [
            src_by_dst[indptr[v]:indptr[v + 1]] for v in frontier
        ]
        if not segments:
            break
        neighbours = np.unique(np.concatenate(segments)) if segments else np.array([], dtype=np.int64)
        fresh = neighbours[~visited[neighbours]]
        visited[fresh] = True
        frontier = fresh
    return np.nonzero(visited)[0].astype(np.int64)


def random_vertex_batches(
    num_vertices: int,
    batch_size: int,
    *,
    rng: np.random.Generator,
) -> Iterator[np.ndarray]:
    """Yield a random partition of the vertex set in fixed-size batches.

    The last batch may be smaller.  One full pass = one epoch of
    Cluster-GCN-style subgraph training.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = rng.permutation(num_vertices)
    for start in range(0, num_vertices, batch_size):
        yield order[start:start + batch_size]
