"""Synthetic topology generators.

The paper evaluates on four citation/social graphs (Cora, Citeseer,
Pubmed, Reddit) and on k-NN graphs built from ModelNet40 point clouds.
None of those raw datasets are available offline, so this module provides
generators that reproduce the *structural* properties the paper's
techniques are sensitive to:

- vertex/edge counts (set exactly from the published numbers),
- degree skew (Chung–Lu power-law sampling for the social graphs;
  exactly-regular out-degree for k-NN graphs),
- batched disjoint unions (EdgeConv processes a minibatch of point
  clouds as one block-diagonal graph).

All generators are deterministic given a seed and fully vectorised.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.graph.csr import Graph

__all__ = [
    "erdos_renyi",
    "chung_lu",
    "knn_graph",
    "sample_point_cloud",
    "batch_point_clouds",
    "disjoint_union",
    "POINT_CLOUD_SHAPES",
]


def erdos_renyi(num_vertices: int, num_edges: int, *, seed: int = 0) -> Graph:
    """Uniform random directed multigraph with exactly ``num_edges`` edges."""
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return Graph(src, dst, num_vertices)


def chung_lu(
    num_vertices: int,
    num_edges: int,
    *,
    alpha: float = 1.8,
    seed: int = 0,
) -> Graph:
    """Heavy-tailed random graph via the Chung–Lu endpoint-weight model.

    Each endpoint of each edge is drawn independently with probability
    proportional to a per-vertex Pareto weight, giving power-law in- and
    out-degree distributions with exactly ``num_edges`` edges.  This is
    the stand-in for Reddit-like social graphs: the property that matters
    to the paper (a few extremely high-degree vertices that serialise
    vertex-balanced kernels) is preserved.

    Parameters
    ----------
    alpha:
        Pareto shape; smaller = heavier tail.  1.8 gives max-degree /
        mean-degree ratios in the hundreds at Reddit-lite scale, matching
        the skew regime of the real graph.
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    rng = np.random.default_rng(seed)
    weights = rng.pareto(alpha, size=num_vertices) + 1.0
    p = weights / weights.sum()
    src = rng.choice(num_vertices, size=num_edges, p=p).astype(np.int64)
    dst = rng.choice(num_vertices, size=num_edges, p=p).astype(np.int64)
    return Graph(src, dst, num_vertices)


# ----------------------------------------------------------------------
# Point clouds and k-NN graphs (EdgeConv / ModelNet40 substitute)
# ----------------------------------------------------------------------
def _sphere(rng: np.random.Generator, n: int) -> np.ndarray:
    x = rng.normal(size=(n, 3))
    x /= np.linalg.norm(x, axis=1, keepdims=True) + 1e-12
    return x


def _cube(rng: np.random.Generator, n: int) -> np.ndarray:
    # Points on the surface of the unit cube: pick a face, then uniform.
    face = rng.integers(0, 6, size=n)
    pts = rng.uniform(-1.0, 1.0, size=(n, 3))
    axis = face % 3
    sign = np.where(face < 3, 1.0, -1.0)
    pts[np.arange(n), axis] = sign
    return pts


def _cylinder(rng: np.random.Generator, n: int) -> np.ndarray:
    theta = rng.uniform(0, 2 * np.pi, size=n)
    z = rng.uniform(-1.0, 1.0, size=n)
    return np.stack([np.cos(theta), np.sin(theta), z], axis=1)


def _torus(rng: np.random.Generator, n: int) -> np.ndarray:
    theta = rng.uniform(0, 2 * np.pi, size=n)
    phi = rng.uniform(0, 2 * np.pi, size=n)
    r, R = 0.35, 1.0
    x = (R + r * np.cos(phi)) * np.cos(theta)
    y = (R + r * np.cos(phi)) * np.sin(theta)
    z = r * np.sin(phi)
    return np.stack([x, y, z], axis=1)


POINT_CLOUD_SHAPES: Dict[str, Callable[[np.random.Generator, int], np.ndarray]] = {
    "sphere": _sphere,
    "cube": _cube,
    "cylinder": _cylinder,
    "torus": _torus,
}


def sample_point_cloud(
    shape: str,
    num_points: int,
    *,
    jitter: float = 0.02,
    seed: int = 0,
) -> np.ndarray:
    """Sample a jittered 3-D point cloud from a parametric surface.

    These play the role of ModelNet40 CAD models: EdgeConv's behaviour
    depends only on the k-NN topology and feature dimensionality, both of
    which synthetic surfaces reproduce.
    """
    if shape not in POINT_CLOUD_SHAPES:
        raise KeyError(
            f"unknown shape {shape!r}; available: {sorted(POINT_CLOUD_SHAPES)}"
        )
    rng = np.random.default_rng(seed)
    pts = POINT_CLOUD_SHAPES[shape](rng, num_points)
    if jitter:
        pts = pts + rng.normal(scale=jitter, size=pts.shape)
    return pts.astype(np.float64)


def knn_graph(points: np.ndarray, k: int) -> Graph:
    """Directed k-NN graph: an edge ``u → v`` for each of ``v``'s k nearest ``u``.

    Every vertex has in-degree exactly ``k`` (self excluded), matching the
    DGL/EdgeConv convention where messages flow from neighbours into the
    centre point.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be (n, dims)")
    n = points.shape[0]
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n}), got {k}")
    tree = cKDTree(points)
    # k+1 because the nearest neighbour of a point is itself.
    _, idx = tree.query(points, k=k + 1)
    neighbours = idx[:, 1:]
    dst = np.repeat(np.arange(n, dtype=np.int64), k)
    src = neighbours.reshape(-1).astype(np.int64)
    return Graph(src, dst, n)


def disjoint_union(graphs: Sequence[Graph]) -> Graph:
    """Block-diagonal union of graphs, relabelling vertices contiguously.

    Built by folding :meth:`~repro.graph.csr.Graph.with_edges` (the
    shared append path), so block ``i``'s edges occupy a contiguous
    edge-id range after block ``i-1``'s — edge-feature tensors for each
    member graph stay aligned as consecutive slices.
    """
    if not graphs:
        raise ValueError("need at least one graph")
    out = graphs[0]
    for g in graphs[1:]:
        out = out.with_edges(
            g.src + out.num_vertices,
            g.dst + out.num_vertices,
            num_new_vertices=g.num_vertices,
        )
    return out


def batch_point_clouds(
    batch_size: int,
    num_points: int,
    k: int,
    *,
    seed: int = 0,
) -> tuple[Graph, np.ndarray]:
    """A minibatch of point clouds as one graph, plus stacked coordinates.

    Shapes cycle through the four parametric surfaces, mimicking a
    ModelNet40 minibatch.  Returns ``(graph, points)`` where ``points``
    has shape ``(batch_size * num_points, 3)`` aligned with graph vertex
    ids.
    """
    names = list(POINT_CLOUD_SHAPES)
    graphs = []
    clouds = []
    for i in range(batch_size):
        pts = sample_point_cloud(
            names[i % len(names)], num_points, seed=seed * 10007 + i
        )
        clouds.append(pts)
        graphs.append(knn_graph(pts, k))
    return disjoint_union(graphs), np.concatenate(clouds, axis=0)
