"""Degree-level graph summaries for analytic (no-execution) accounting.

Every FLOP / IO / memory formula in the library is a function of
``|V|``, ``|E|`` and, for workload-imbalance modelling, the degree
distribution.  :class:`GraphStats` packages exactly that, so the analytic
pipeline (counters + GPU cost model) can run on topologies far too large
to materialise — most importantly the full 115M-edge Reddit graph used by
the paper's Figure 7/9/10/11 experiments, which we only ever need at the
stats level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GraphStats"]


@dataclass(frozen=True)
class GraphStats:
    """Summary of a directed graph sufficient for cost accounting.

    Attributes
    ----------
    num_vertices, num_edges:
        ``|V|`` and ``|E|``.
    in_degrees, out_degrees:
        Integer arrays of shape ``(num_vertices,)``.  Their sums must both
        equal ``num_edges``.
    """

    num_vertices: int
    num_edges: int
    in_degrees: np.ndarray
    out_degrees: np.ndarray

    def __post_init__(self) -> None:
        ind = np.asarray(self.in_degrees, dtype=np.int64)
        outd = np.asarray(self.out_degrees, dtype=np.int64)
        if ind.shape != (self.num_vertices,) or outd.shape != (self.num_vertices,):
            raise ValueError(
                "degree arrays must have shape (num_vertices,); got "
                f"{ind.shape} / {outd.shape} for num_vertices={self.num_vertices}"
            )
        if int(ind.sum()) != self.num_edges or int(outd.sum()) != self.num_edges:
            raise ValueError(
                "degree sums must equal num_edges: "
                f"sum(in)={int(ind.sum())}, sum(out)={int(outd.sum())}, "
                f"num_edges={self.num_edges}"
            )
        object.__setattr__(self, "in_degrees", ind)
        object.__setattr__(self, "out_degrees", outd)

    # ------------------------------------------------------------------
    @property
    def mean_in_degree(self) -> float:
        """Average in-degree, ``|E| / |V|``."""
        return self.num_edges / max(self.num_vertices, 1)

    @property
    def max_in_degree(self) -> int:
        """Largest in-degree; the serialisation floor of vertex-balanced kernels."""
        return int(self.in_degrees.max()) if self.num_vertices else 0

    @property
    def max_out_degree(self) -> int:
        return int(self.out_degrees.max()) if self.num_vertices else 0

    def degree_imbalance(self) -> float:
        """``max_in_degree / mean_in_degree`` — a scalar skew indicator.

        A regular graph (e.g. a k-NN graph) has imbalance 1; the Reddit
        power-law graph has imbalance in the thousands, which is why the
        paper observes vertex-balanced fused kernels losing latency there
        (Section 7.3, "Fusion").
        """
        mean = self.mean_in_degree
        return self.max_in_degree / mean if mean > 0 else 1.0

    # ------------------------------------------------------------------
    @classmethod
    def from_degree_model(
        cls,
        num_vertices: int,
        mean_degree: float,
        *,
        alpha: float = 1.8,
        max_degree: Optional[int] = None,
        seed: int = 0,
    ) -> "GraphStats":
        """Sample power-law degree arrays without building any edges.

        Degrees follow a discrete Pareto-like law ``P(d) ∝ d^(-alpha)``
        rescaled to the requested mean, optionally clipped at
        ``max_degree`` (real social graphs have bounded hubs — the
        GraphSAGE Reddit graph tops out around 22K — whereas an
        unclipped Pareto tail at 233K samples produces million-degree
        outliers that would distort the imbalance model).  ``in`` and
        ``out`` degrees are sampled independently and then adjusted so
        both sum to the same ``num_edges``.  This is how the full-size
        Reddit topology enters the analytic pipeline: 233K degree
        entries instead of 115M edges.
        """
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        if mean_degree <= 0:
            raise ValueError("mean_degree must be positive")
        rng = np.random.default_rng(seed)

        def sample(n: int) -> np.ndarray:
            raw = rng.pareto(alpha, size=n) + 1.0
            scaled = raw * (mean_degree / raw.mean())
            deg = np.maximum(np.round(scaled), 0).astype(np.int64)
            if max_degree is not None:
                deg = np.minimum(deg, max_degree)
            return deg

        ind = sample(num_vertices)
        outd = sample(num_vertices)
        target = int(round(mean_degree * num_vertices))
        ind = _adjust_sum(ind, target, rng, cap=max_degree)
        outd = _adjust_sum(outd, target, rng, cap=max_degree)
        return cls(num_vertices, target, ind, outd)

    @classmethod
    def regular(cls, num_vertices: int, degree: int) -> "GraphStats":
        """Stats of a ``degree``-regular directed graph (e.g. k-NN)."""
        deg = np.full(num_vertices, degree, dtype=np.int64)
        return cls(num_vertices, num_vertices * degree, deg, deg.copy())


def _adjust_sum(
    deg: np.ndarray,
    target: int,
    rng: np.random.Generator,
    *,
    cap: "Optional[int]" = None,
) -> np.ndarray:
    """Nudge a degree array so it sums exactly to ``target``.

    The difference is spread over uniformly chosen vertices one unit at a
    time (vectorised via bincount), clamping at zero and, when ``cap`` is
    given, at the maximum degree.
    """
    deg = deg.copy()
    diff = target - int(deg.sum())
    while diff != 0:
        step = 1 if diff > 0 else -1
        picks = rng.integers(0, deg.size, size=abs(diff))
        delta = np.bincount(picks, minlength=deg.size) * step
        if step < 0:
            # Cannot take more than a vertex already has.
            delta = np.maximum(delta, -deg)
        elif cap is not None:
            delta = np.minimum(delta, np.maximum(cap - deg, 0))
        deg = deg + delta
        diff = target - int(deg.sum())
    return deg
