"""Degree-level graph summaries for analytic (no-execution) accounting.

Every FLOP / IO / memory formula in the library is a function of
``|V|``, ``|E|`` and, for workload-imbalance modelling, the degree
distribution.  :class:`GraphStats` packages exactly that, so the analytic
pipeline (counters + GPU cost model) can run on topologies far too large
to materialise — most importantly the full 115M-edge Reddit graph used by
the paper's Figure 7/9/10/11 experiments, which we only ever need at the
stats level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "GraphStats",
    "expected_khop_membership",
    "expected_khop_field_size",
    "expected_field_stats",
]


@dataclass(frozen=True)
class GraphStats:
    """Summary of a directed graph sufficient for cost accounting.

    Attributes
    ----------
    num_vertices, num_edges:
        ``|V|`` and ``|E|``.
    in_degrees, out_degrees:
        Integer arrays of shape ``(num_vertices,)``.  Their sums must both
        equal ``num_edges``.
    """

    num_vertices: int
    num_edges: int
    in_degrees: np.ndarray
    out_degrees: np.ndarray

    def __post_init__(self) -> None:
        ind = np.asarray(self.in_degrees, dtype=np.int64)
        outd = np.asarray(self.out_degrees, dtype=np.int64)
        if ind.shape != (self.num_vertices,) or outd.shape != (self.num_vertices,):
            raise ValueError(
                "degree arrays must have shape (num_vertices,); got "
                f"{ind.shape} / {outd.shape} for num_vertices={self.num_vertices}"
            )
        if int(ind.sum()) != self.num_edges or int(outd.sum()) != self.num_edges:
            raise ValueError(
                "degree sums must equal num_edges: "
                f"sum(in)={int(ind.sum())}, sum(out)={int(outd.sum())}, "
                f"num_edges={self.num_edges}"
            )
        object.__setattr__(self, "in_degrees", ind)
        object.__setattr__(self, "out_degrees", outd)

    # ------------------------------------------------------------------
    @property
    def mean_in_degree(self) -> float:
        """Average in-degree, ``|E| / |V|``."""
        return self.num_edges / max(self.num_vertices, 1)

    @property
    def max_in_degree(self) -> int:
        """Largest in-degree; the serialisation floor of vertex-balanced kernels."""
        return int(self.in_degrees.max()) if self.num_vertices else 0

    @property
    def max_out_degree(self) -> int:
        return int(self.out_degrees.max()) if self.num_vertices else 0

    def degree_imbalance(self) -> float:
        """``max_in_degree / mean_in_degree`` — a scalar skew indicator.

        A regular graph (e.g. a k-NN graph) has imbalance 1; the Reddit
        power-law graph has imbalance in the thousands, which is why the
        paper observes vertex-balanced fused kernels losing latency there
        (Section 7.3, "Fusion").
        """
        mean = self.mean_in_degree
        return self.max_in_degree / mean if mean > 0 else 1.0

    # ------------------------------------------------------------------
    @classmethod
    def from_degree_model(
        cls,
        num_vertices: int,
        mean_degree: float,
        *,
        alpha: float = 1.8,
        max_degree: Optional[int] = None,
        seed: int = 0,
    ) -> "GraphStats":
        """Sample power-law degree arrays without building any edges.

        Degrees follow a discrete Pareto-like law ``P(d) ∝ d^(-alpha)``
        rescaled to the requested mean, optionally clipped at
        ``max_degree`` (real social graphs have bounded hubs — the
        GraphSAGE Reddit graph tops out around 22K — whereas an
        unclipped Pareto tail at 233K samples produces million-degree
        outliers that would distort the imbalance model).  ``in`` and
        ``out`` degrees are sampled independently and then adjusted so
        both sum to the same ``num_edges``.  This is how the full-size
        Reddit topology enters the analytic pipeline: 233K degree
        entries instead of 115M edges.
        """
        if num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        if mean_degree <= 0:
            raise ValueError("mean_degree must be positive")
        rng = np.random.default_rng(seed)

        def sample(n: int) -> np.ndarray:
            raw = rng.pareto(alpha, size=n) + 1.0
            scaled = raw * (mean_degree / raw.mean())
            deg = np.maximum(np.round(scaled), 0).astype(np.int64)
            if max_degree is not None:
                deg = np.minimum(deg, max_degree)
            return deg

        ind = sample(num_vertices)
        outd = sample(num_vertices)
        target = int(round(mean_degree * num_vertices))
        ind = _adjust_sum(ind, target, rng, cap=max_degree)
        outd = _adjust_sum(outd, target, rng, cap=max_degree)
        return cls(num_vertices, target, ind, outd)

    @classmethod
    def regular(cls, num_vertices: int, degree: int) -> "GraphStats":
        """Stats of a ``degree``-regular directed graph (e.g. k-NN)."""
        deg = np.full(num_vertices, degree, dtype=np.int64)
        return cls(num_vertices, num_vertices * degree, deg, deg.copy())


# ======================================================================
# Expected receptive fields (degree-model estimates for sampled training)
# ======================================================================
def expected_khop_membership(
    stats: "GraphStats", batch_size: int, hops: int
) -> np.ndarray:
    """Per-vertex probability of lying in a random batch's k-hop field.

    Degree-model estimate under configuration-model independence: with
    ``b = min(batch_size, |V|)`` uniform seeds, every vertex starts at
    membership ``b/|V|``; each hop, a vertex joins if any of its
    out-edges points into the current field.  The endpoint of a random
    edge is in-degree biased, so the per-edge hit probability is
    ``t = Σ_v in_deg(v)·m(v) / |E|`` and the update is::

        m'(u) = 1 - (1 - m(u)) · (1 - t)^{out_deg(u)}

    Exact receptive-field sizes come from sampling concrete batches
    (:func:`repro.graph.sampling.plan_minibatches`); this estimator is
    how stats-only workloads (e.g. the 115M-edge ``reddit-full``) enter
    the per-batch IO/memory accounting.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if hops < 0:
        raise ValueError("hops must be non-negative")
    V, E = stats.num_vertices, stats.num_edges
    m = np.full(V, min(batch_size, V) / V, dtype=np.float64)
    for _ in range(hops):
        if E == 0:
            break
        t = float((stats.in_degrees * m).sum()) / E
        m = 1.0 - (1.0 - m) * np.power(1.0 - t, stats.out_degrees)
    return m


def expected_khop_field_size(
    stats: "GraphStats", batch_size: int, hops: int
) -> float:
    """Expected receptive-field vertex count of one random batch."""
    return float(expected_khop_membership(stats, batch_size, hops).sum())


def expected_field_stats(
    stats: "GraphStats",
    batch_size: int,
    hops: int,
    *,
    rng: np.random.Generator,
) -> "GraphStats":
    """One Monte-Carlo realisation of a batch's receptive-field stats.

    Draws a field of the expected size with vertices weighted by their
    membership probability, then thins each member's degrees binomially
    by the probability that the corresponding edge endpoint also landed
    in the field (``s`` for in-edges' sources, ``t`` for out-edges'
    destinations).  Both degree arrays are nudged to the common
    expected induced-edge count ``|E|·s·t`` so the result is a valid
    :class:`GraphStats` for the analytic walkers.  Deterministic given
    ``rng`` — the stats-only twin of inducing a sampled batch.
    """
    m = expected_khop_membership(stats, batch_size, hops)
    V, E = stats.num_vertices, stats.num_edges
    n_field = max(1, int(round(m.sum())))
    weights = m / m.sum()
    members = np.sort(
        rng.choice(V, size=min(n_field, V), replace=False, p=weights)
    )
    if E == 0:
        zeros = np.zeros(members.size, dtype=np.int64)
        return GraphStats(members.size, 0, zeros, zeros.copy())
    # Edge-endpoint membership probabilities (degree-biased).
    t = float((stats.in_degrees * m).sum()) / E    # dst of a random edge
    s = float((stats.out_degrees * m).sum()) / E   # src of a random edge
    ind = rng.binomial(stats.in_degrees[members], min(s, 1.0)).astype(np.int64)
    outd = rng.binomial(stats.out_degrees[members], min(t, 1.0)).astype(np.int64)
    target = int(round(E * s * t))
    target = min(target, int(stats.in_degrees[members].sum()),
                 int(stats.out_degrees[members].sum()))
    ind = _adjust_sum(ind, target, rng)
    outd = _adjust_sum(outd, target, rng)
    return GraphStats(members.size, target, ind, outd)


def _adjust_sum(
    deg: np.ndarray,
    target: int,
    rng: np.random.Generator,
    *,
    cap: "Optional[int]" = None,
) -> np.ndarray:
    """Nudge a degree array so it sums exactly to ``target``.

    The difference is spread over uniformly chosen vertices one unit at a
    time (vectorised via bincount), clamping at zero and, when ``cap`` is
    given, at the maximum degree.
    """
    deg = deg.copy()
    diff = target - int(deg.sum())
    while diff != 0:
        step = 1 if diff > 0 else -1
        picks = rng.integers(0, deg.size, size=abs(diff))
        delta = np.bincount(picks, minlength=deg.size) * step
        if step < 0:
            # Cannot take more than a vertex already has.
            delta = np.maximum(delta, -deg)
        elif cap is not None:
            delta = np.minimum(delta, np.maximum(cap - deg, 0))
        deg = deg + delta
        diff = target - int(deg.sum())
    return deg
