"""Runtime graph reordering utilities (§8.1's GNNAdvisor/Rabbit family).

The paper's related-work section describes a complementary class of
optimizations — *GNN runtime optimization* — that preprocess the graph
to balance workloads and improve locality (GNNAdvisor's neighbor
grouping, Rabbit reordering).  This module implements the two
vertex-relabeling primitives those systems build on:

- :func:`degree_sorted_relabel` — renumber vertices by descending
  in-degree, clustering heavy hubs (a locality proxy for Rabbit
  ordering),
- :func:`relabel` — apply an arbitrary permutation.

Relabeling is a pure renaming: any GNN in this library is equivariant
to it (permuting input features with the same permutation permutes the
outputs), which the property suite verifies.  The workload-balancing
effect of GNNAdvisor's *neighbor grouping* is modelled on the cost
side — see ``CostModel(neighbor_group_size=...)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import Graph

__all__ = ["relabel", "degree_sorted_relabel"]


def relabel(graph: Graph, perm: np.ndarray) -> Graph:
    """Renumber vertices: new id of vertex ``v`` is ``perm[v]``.

    ``perm`` must be a permutation of ``range(num_vertices)``.  Edge ids
    (and therefore edge-feature alignment) are preserved.
    """
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (graph.num_vertices,):
        raise ValueError(
            f"perm must have shape ({graph.num_vertices},), got {perm.shape}"
        )
    if np.bincount(perm, minlength=graph.num_vertices).max(initial=0) > 1 or (
        perm.size and (perm.min() < 0 or perm.max() >= graph.num_vertices)
    ):
        raise ValueError("perm is not a permutation of the vertex ids")
    return Graph(perm[graph.src], perm[graph.dst], graph.num_vertices)


def degree_sorted_relabel(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Renumber vertices by descending in-degree.

    Returns ``(relabeled_graph, perm)`` with ``perm[old_id] = new_id``.
    Heavy hubs receive the smallest ids, clustering their edge segments
    at the front of the CSC layout — the access-locality effect Rabbit
    ordering pursues.  Apply the same ``perm`` to vertex features:
    ``new_feats[perm] = old_feats`` (i.e. ``new_feats = old_feats[inv]``
    with ``inv = np.argsort(perm)``).
    """
    order = np.argsort(-graph.in_degrees, kind="stable")
    perm = np.empty(graph.num_vertices, dtype=np.int64)
    perm[order] = np.arange(graph.num_vertices)
    return relabel(graph, perm), perm
