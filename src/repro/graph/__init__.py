"""Graph substrate: topology containers, statistics, generators, datasets.

This subpackage provides everything the rest of the library needs to know
about graph *structure*:

- :class:`~repro.graph.csr.Graph` — an immutable directed graph stored in
  COO form with lazily built CSR (grouped by source) and CSC (grouped by
  destination) views.  Edge-feature tensors everywhere in the library are
  stored in COO edge-id order; the CSR/CSC views carry the permutations
  needed by segment kernels.
- :class:`~repro.graph.stats.GraphStats` — the degree-level summary
  (``|V|``, ``|E|``, in/out degree arrays) that analytic cost counters and
  the GPU cost model consume.  Stats can be derived from a concrete
  :class:`Graph` or sampled directly at scales too large to materialise
  (e.g. the full 115M-edge Reddit topology).
- :mod:`~repro.graph.generators` — synthetic topology generators
  (Erdős–Rényi, Chung–Lu power law, k-NN point clouds, disjoint unions).
- :mod:`~repro.graph.datasets` — a named registry of the evaluation
  workloads used by the paper (Cora / Citeseer / Pubmed / Reddit /
  ModelNet40), rebuilt synthetically with the published shape parameters.
"""

from repro.graph.csr import Graph
from repro.graph.stats import (
    GraphStats,
    expected_field_stats,
    expected_khop_field_size,
    expected_khop_membership,
)
from repro.graph.generators import (
    erdos_renyi,
    chung_lu,
    knn_graph,
    sample_point_cloud,
    batch_point_clouds,
    disjoint_union,
)
from repro.graph.datasets import get_dataset, list_datasets, Dataset
from repro.graph.reorder import relabel, degree_sorted_relabel
from repro.graph.sampling import (
    MiniBatch,
    in_neighbours,
    induced_subgraph,
    khop_neighborhood,
    plan_minibatches,
    random_vertex_batches,
)
from repro.graph.partition import (
    GraphPartition,
    PartitionSpec,
    PartitionStats,
    partition_graph,
)

__all__ = [
    "Graph",
    "GraphStats",
    "expected_khop_membership",
    "expected_khop_field_size",
    "expected_field_stats",
    "erdos_renyi",
    "chung_lu",
    "knn_graph",
    "sample_point_cloud",
    "batch_point_clouds",
    "disjoint_union",
    "get_dataset",
    "list_datasets",
    "Dataset",
    "relabel",
    "degree_sorted_relabel",
    "in_neighbours",
    "induced_subgraph",
    "khop_neighborhood",
    "random_vertex_batches",
    "MiniBatch",
    "plan_minibatches",
    "GraphPartition",
    "PartitionSpec",
    "PartitionStats",
    "partition_graph",
]
