"""Named workload registry mirroring the paper's evaluation datasets.

Each entry reproduces the published vertex/edge counts and feature/class
dimensions.  Topology is synthetic (see :mod:`repro.graph.generators`);
DESIGN.md §2 documents why that preserves the behaviour under study.

Two scales of Reddit exist:

- ``reddit-lite`` — a 100× linear scale-down (23,297 vertices, ~1.15M
  edges) with the same heavy-tailed skew, small enough for the concrete
  NumPy engine on this machine.
- ``reddit-full`` — stats-only (232,965 vertices, 114,615,892 edges,
  matching the published GraphSAGE Reddit numbers).  Requesting its
  concrete graph raises; the analytic pipeline runs on its
  :class:`~repro.graph.stats.GraphStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.graph.csr import Graph
from repro.graph.generators import batch_point_clouds, chung_lu
from repro.graph.stats import GraphStats
from repro.registry import DATASETS, register_dataset

__all__ = ["Dataset", "get_dataset", "list_datasets"]


@dataclass
class Dataset:
    """A named workload: topology plus feature/label metadata.

    Attributes
    ----------
    name:
        Registry key.
    feature_dim:
        Input feature width (the published value; benches may override).
    num_classes:
        Label cardinality for classification heads.
    stats:
        Degree-level summary, always available.
    """

    name: str
    feature_dim: int
    num_classes: int
    stats: GraphStats
    _graph_factory: Optional[Callable[[], Graph]] = field(default=None, repr=False)
    _graph: Optional[Graph] = field(default=None, repr=False)
    points: Optional[np.ndarray] = field(default=None, repr=False)
    #: Dataset-provided ground-truth labels (None for stats-only
    #: workloads; :meth:`labels` then falls back to random draws).
    _labels: Optional[np.ndarray] = field(default=None, repr=False)
    #: The hidden linear map the labels were planted from (published
    #: width × num_classes); reduced-width features keep these
    #: directions so the labels stay learnable at any width.
    _label_basis: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def has_concrete_graph(self) -> bool:
        """Whether :meth:`graph` can materialise edges on this machine."""
        return self._graph_factory is not None or self._graph is not None

    def graph(self) -> Graph:
        """Materialise (and cache) the concrete topology."""
        if self._graph is None:
            if self._graph_factory is None:
                raise RuntimeError(
                    f"dataset {self.name!r} is stats-only; use .stats for "
                    "analytic accounting or pick the '-lite' variant"
                )
            self._graph = self._graph_factory()
        return self._graph

    def features(self, dim: Optional[int] = None, *, seed: int = 0) -> np.ndarray:
        """Vertex features of width ``dim`` (default: published dim).

        Datasets with ground-truth labels have one *canonical* feature
        matrix (published width, seed 0); other widths/seeds draw iid
        features but embed the planted class-score directions in their
        leading columns, so the labels stay learnable at any training
        width.  Label-less (stats-only) datasets draw fully independent
        features per (dim, seed).
        """
        dim = self.feature_dim if dim is None else dim
        rng = np.random.default_rng(seed)
        out = rng.normal(
            scale=1.0 / np.sqrt(dim), size=(self.stats.num_vertices, dim)
        ).astype(np.float64)
        if self._label_basis is None or (dim == self.feature_dim and seed == 0):
            return out
        # Overwrite up to half the iid columns with the planted
        # class-score directions (scaled to the iid column statistics):
        # the features stay full-rank and seed-dependent, yet carry the
        # label signal at any width.
        scores = self._canonical_features() @ self._label_basis
        keep = min(scores.shape[1], max(1, dim // 2))
        out[:, :keep] = scores[:, :keep] / np.sqrt(dim)
        return out

    def _canonical_features(self) -> np.ndarray:
        """The dataset's fixed feature matrix (published width, seed 0)."""
        rng = np.random.default_rng(0)
        return rng.normal(
            scale=1.0 / np.sqrt(self.feature_dim),
            size=(self.stats.num_vertices, self.feature_dim),
        ).astype(np.float64)

    @property
    def has_labels(self) -> bool:
        """Whether this dataset ships ground-truth labels."""
        return self._labels is not None

    def labels(self, *, seed: int = 0) -> np.ndarray:
        """Per-vertex class labels.

        Returns the dataset's ground-truth labels when it provides them
        (``seed`` is then ignored); stats-only workloads fall back to
        random class draws.
        """
        if self._labels is not None:
            # Copy: callers commonly mask labels in place, and this
            # Dataset object is shared through the process-wide cache.
            return self._labels.copy()
        rng = np.random.default_rng(seed + 1)
        return rng.integers(
            0, self.num_classes, size=self.stats.num_vertices
        ).astype(np.int64)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
# Published shapes: (num_vertices, num_edges, feature_dim, num_classes).
_CITATION_SHAPES: Dict[str, Tuple[int, int, int, int]] = {
    "cora": (2_708, 10_556, 1_433, 7),
    "citeseer": (3_327, 9_104, 3_703, 6),
    "pubmed": (19_717, 88_648, 500, 3),
}

_REDDIT_FULL = (232_965, 114_615_892, 602, 41)
_REDDIT_LITE = (23_297, 1_146_158, 602, 41)


def _plant_labels(ds: Dataset, *, seed: int) -> Dataset:
    """Attach ground-truth labels: a hidden linear map of the canonical
    (published-width, seed-0) features.  Deterministic per dataset, so
    repeated builds agree; every class remains reachable."""
    feats = ds.features(seed=0)
    w = np.random.default_rng(seed).normal(size=(ds.feature_dim, ds.num_classes))
    ds._labels = np.asarray((feats @ w).argmax(axis=1), dtype=np.int64)
    ds._label_basis = w
    return ds


def _citation_factory(name: str, seed: int) -> Callable[[], Dataset]:
    n, m, f, c = _CITATION_SHAPES[name]

    def build() -> Dataset:
        g = chung_lu(n, m, alpha=2.2, seed=seed)
        return _plant_labels(
            Dataset(
                name=name,
                feature_dim=f,
                num_classes=c,
                stats=g.stats(),
                _graph=g,
            ),
            seed=seed,
        )

    return build


def _reddit_lite(seed: int = 7) -> Dataset:
    n, m, f, c = _REDDIT_LITE

    def factory() -> Graph:
        return chung_lu(n, m, alpha=1.6, seed=seed)

    # Stats come from the same construction so analytic and concrete runs
    # agree; building the lite graph once here is cheap (~1M edges).
    g = factory()
    return _plant_labels(
        Dataset(
            name="reddit-lite",
            feature_dim=f,
            num_classes=c,
            stats=g.stats(),
            _graph=g,
        ),
        seed=seed,
    )


def _reddit_full(seed: int = 7) -> Dataset:
    n, m, f, c = _REDDIT_FULL
    # Max degree ~22K: the published hub size of the GraphSAGE Reddit
    # graph; see GraphStats.from_degree_model for why clipping matters.
    stats = GraphStats.from_degree_model(
        n, m / n, alpha=1.6, max_degree=22_000, seed=seed
    )
    return Dataset(
        name="reddit-full",
        feature_dim=f,
        num_classes=c,
        stats=stats,
        _graph_factory=None,
    )


def _modelnet(batch_size: int, num_points: int, k: int, seed: int = 3) -> Dataset:
    g, pts = batch_point_clouds(batch_size, num_points, k, seed=seed)
    return _plant_labels(
        Dataset(
            name=f"modelnet40-b{batch_size}-k{k}",
            feature_dim=3,
            num_classes=40,
            stats=g.stats(),
            _graph=g,
            points=pts,
        ),
        seed=seed,
    )


# Built-in workloads, registered on the unified dataset registry.  Add
# your own with ``@register_dataset("name")`` over a zero-arg builder.
for _name, _seed in (("cora", 11), ("citeseer", 13), ("pubmed", 17)):
    register_dataset(_name)(_citation_factory(_name, seed=_seed))
register_dataset("reddit-lite")(_reddit_lite)
register_dataset("reddit-full")(_reddit_full)
# EdgeConv settings from §7.2: k ∈ {20, 40}, batch ∈ {32, 64}.  The
# paper uses 1024-point ModelNet40 clouds; we default to 1024 points
# but benches may construct smaller ones directly via _modelnet-style
# calls for wall-clock runs.
register_dataset("modelnet40-b32-k20")(lambda: _modelnet(32, 1024, 20))
register_dataset("modelnet40-b32-k40")(lambda: _modelnet(32, 1024, 40))
register_dataset("modelnet40-b64-k20")(lambda: _modelnet(64, 1024, 20))
register_dataset("modelnet40-b64-k40")(lambda: _modelnet(64, 1024, 40))

#: Built datasets, keyed by name; each entry remembers the builder it
#: came from so a re-registered builder (replace=True) invalidates it.
_CACHE: Dict[str, Tuple[Callable[[], Dataset], Dataset]] = {}


def list_datasets() -> list[str]:
    """Names accepted by :func:`get_dataset`."""
    return DATASETS.names()


def get_dataset(name: str, *, fresh: bool = False) -> Dataset:
    """Fetch (and memoise) a named dataset.

    Parameters
    ----------
    fresh:
        Bypass the cache and rebuild — used by tests that mutate nothing
        but want independent RNG state.
    """
    builder = DATASETS.get(name)
    if fresh:
        return builder()
    cached = _CACHE.get(name)
    if cached is None or cached[0] is not builder:
        _CACHE[name] = (builder, builder())
    return _CACHE[name][1]
