"""Vertex partitioning for multi-GPU execution.

A :class:`GraphPartition` splits the vertex set of one
:class:`~repro.graph.csr.Graph` into ``num_parts`` disjoint *owned*
sets.  Edge ownership follows the destination vertex (the owner of an
edge's destination owns the edge), which makes every **Gather over
in-edges a purely local reduction** — the layout DistDGL and NeuGraph
use, and the one that keeps partitioned execution bit-identical to
single-graph execution:

- Each part's :attr:`~PartSubgraph.in_graph` holds exactly the owned
  edges, in ascending global edge-id order, over local vertex ids where
  owned vertices come first and *ghost* sources (remote endpoints of cut
  edges) come after.  Stable grouping preserves the per-segment edge
  order of the global CSC, so segmented reductions accumulate in the
  same order as the unpartitioned kernel.
- Scatter needs the source-side rows of cut edges — the
  :attr:`~PartSubgraph.ghost_src` *halo map* lists exactly the remote
  vertex rows a part must fetch before any edge kernel runs.
- Gather over out-edges (backward passes) reduces each owned vertex's
  full out-edge list; the remotely-owned edge rows it must fetch are
  the :attr:`~PartSubgraph.halo_out_edges`.

Three partitioners are provided: ``hash`` (pseudo-random, perfectly
balanced in expectation), ``range`` (contiguous blocks — pairs with the
locality-aware relabellings in :mod:`repro.graph.reorder`), and
``greedy`` (streaming linear-deterministic-greedy edge-cut
minimisation, visiting vertices by descending degree).

:class:`PartitionStats` is the degree-level summary the multi-GPU
analytic walker consumes — exact when derived from a concrete
partition, expectation-based when derived from raw
:class:`~repro.graph.stats.GraphStats` (how the 115M-edge Reddit graph
is partitioned without ever materialising an edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.graph.csr import Graph
from repro.graph.stats import GraphStats

__all__ = [
    "PartitionSpec",
    "PartSubgraph",
    "GraphPartition",
    "PartitionStats",
    "partition_graph",
    "hash_assignment",
    "range_assignment",
    "greedy_edge_cut_assignment",
    "receptive_field",
    "allreduce_bytes_per_gpu",
    "PARTITION_METHODS",
]

PARTITION_METHODS = ("hash", "range", "greedy")


@dataclass(frozen=True)
class PartitionSpec:
    """How a strategy wants the graph split across devices.

    The number of parts is *not* part of the spec — it comes from the
    cluster the configuration targets, so one strategy serves every
    cluster size.
    """

    method: str = "hash"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.method not in PARTITION_METHODS:
            raise ValueError(
                f"partition method must be in {PARTITION_METHODS}, "
                f"got {self.method!r}"
            )


# ======================================================================
# Assignment functions: graph -> part id per vertex
# ======================================================================
def hash_assignment(
    num_vertices: int, num_parts: int, *, seed: int = 0
) -> np.ndarray:
    """Pseudo-random assignment via a splitmix64-style integer mix.

    Deterministic in ``(num_vertices, num_parts, seed)`` and
    independent of vertex ordering — the standard baseline partitioner
    of distributed GNN systems.
    """
    _check_parts(num_parts)
    v = np.arange(num_vertices, dtype=np.uint64)
    z = v + np.uint64(seed) * np.uint64(0x9E3779B97F4A7C15) + np.uint64(
        0x9E3779B97F4A7C15
    )
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(num_parts)).astype(np.int64)


def range_assignment(num_vertices: int, num_parts: int) -> np.ndarray:
    """Contiguous blocks (``np.array_split`` sizing: remainders first)."""
    _check_parts(num_parts)
    out = np.empty(num_vertices, dtype=np.int64)
    start = 0
    for p, chunk in enumerate(np.array_split(np.arange(num_vertices), num_parts)):
        out[start:start + chunk.size] = p
        start += chunk.size
    return out


def greedy_edge_cut_assignment(
    graph: Graph,
    num_parts: int,
    *,
    balance_slack: float = 1.05,
) -> np.ndarray:
    """Streaming greedy edge-cut minimisation (LDG-style).

    Vertices are visited in descending total-degree order; each goes to
    the part holding most of its already-placed neighbours, scaled by
    remaining capacity (``cap = ceil(|V|/P · slack)``) so no part
    overfills.  O(|V| + |E|) and deterministic.
    """
    _check_parts(num_parts)
    V = graph.num_vertices
    cap = int(np.ceil(V / num_parts * balance_slack))
    assignment = np.full(V, -1, dtype=np.int64)
    sizes = np.zeros(num_parts, dtype=np.int64)
    total_deg = graph.in_degrees + graph.out_degrees
    order = np.argsort(-total_deg, kind="stable")
    csc_indptr, csc_src = graph.csc_indptr, graph.csc_src
    csr_indptr, csr_dst = graph.csr_indptr, graph.csr_dst
    for v in order:
        neighbours = np.concatenate(
            [
                csc_src[csc_indptr[v]:csc_indptr[v + 1]],
                csr_dst[csr_indptr[v]:csr_indptr[v + 1]],
            ]
        )
        placed = assignment[neighbours]
        placed = placed[placed >= 0]
        score = np.zeros(num_parts, dtype=np.float64)
        if placed.size:
            score += np.bincount(placed, minlength=num_parts)
        # Capacity-aware tie-break: prefer emptier parts.
        score *= 1.0 - sizes / cap
        score[sizes >= cap] = -np.inf
        assignment[v] = int(np.argmax(score))
        sizes[assignment[v]] += 1
    return assignment


_ASSIGNERS: Dict[str, Callable] = {
    "hash": lambda g, p, seed: hash_assignment(g.num_vertices, p, seed=seed),
    "range": lambda g, p, seed: range_assignment(g.num_vertices, p),
    "greedy": lambda g, p, seed: greedy_edge_cut_assignment(g, p),
}


def _check_parts(num_parts: int) -> None:
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")


# ======================================================================
# Per-part subgraphs
# ======================================================================
@dataclass(frozen=True)
class PartSubgraph:
    """One part's local view of the partitioned graph.

    Local vertex ids: owned vertices first (``0 .. num_owned-1``, in
    ascending global-id order), ghost vertices after.  Both local
    graphs keep their edges in ascending global edge-id order, so
    per-segment reduction order matches the global kernels exactly.
    """

    part_id: int
    #: Global ids of owned vertices, ascending.
    owned: np.ndarray
    #: Global ids of remote sources of owned edges (the halo map a
    #: vertex-tensor exchange must fetch before a Scatter), ascending.
    ghost_src: np.ndarray
    #: Global edge ids owned by this part (destination owned), ascending.
    in_edge_ids: np.ndarray
    #: Owned edges over local ids ``owned ++ ghost_src``.
    in_graph: Graph
    #: Global ids of remote destinations of outgoing edges, ascending.
    ghost_dst: np.ndarray
    #: Global edge ids whose source is owned (the out-gather edge set),
    #: ascending.
    out_edge_ids: np.ndarray
    #: Out-edges of owned vertices over local ids ``owned ++ ghost_dst``.
    out_graph: Graph

    @property
    def num_owned(self) -> int:
        return int(self.owned.size)

    @property
    def num_local_vertices(self) -> int:
        """Rows a vertex tensor occupies on this GPU (owned + halo)."""
        return int(self.owned.size + self.ghost_src.size)

    @property
    def halo_in_rows(self) -> int:
        """Vertex rows fetched per vertex-tensor halo exchange."""
        return int(self.ghost_src.size)

    @property
    def halo_out_edges(self) -> int:
        """Remotely-owned edge rows fetched per out-orientation Gather."""
        if self.out_edge_ids.size == 0:
            return 0
        return int(self.out_edge_ids.size - np.isin(
            self.out_edge_ids, self.in_edge_ids, assume_unique=True
        ).sum())

    def stats(self) -> GraphStats:
        """Degree summary of the local in-graph (owned + ghost rows).

        Owned rows keep their exact global in-degree (every in-edge of
        an owned vertex is local); ghost rows contribute out-degree
        only.  Both degree sums equal the owned-edge count, so the
        result is a valid :class:`GraphStats` whose vertex extent is the
        rows a vertex tensor really occupies on this GPU.
        """
        n_local = self.num_local_vertices
        if n_local == 0:
            empty = np.zeros(0, dtype=np.int64)
            return GraphStats(0, 0, empty, empty.copy())
        return GraphStats(
            num_vertices=n_local,
            num_edges=int(self.in_edge_ids.size),
            in_degrees=self.in_graph.in_degrees[:n_local].copy(),
            out_degrees=self.in_graph.out_degrees[:n_local].copy(),
        )


def _build_part(graph: Graph, assignment: np.ndarray, part: int) -> PartSubgraph:
    owned_mask = assignment == part
    owned = np.nonzero(owned_mask)[0].astype(np.int64)

    in_eids = np.nonzero(owned_mask[graph.dst])[0].astype(np.int64)
    src_g, dst_g = graph.src[in_eids], graph.dst[in_eids]
    ghost_src = np.unique(src_g[~owned_mask[src_g]])

    out_eids = np.nonzero(owned_mask[graph.src])[0].astype(np.int64)
    osrc_g, odst_g = graph.src[out_eids], graph.dst[out_eids]
    ghost_dst = np.unique(odst_g[~owned_mask[odst_g]])

    def local_graph(ghosts: np.ndarray, s: np.ndarray, d: np.ndarray) -> Graph:
        lookup = np.full(graph.num_vertices, -1, dtype=np.int64)
        lookup[owned] = np.arange(owned.size)
        lookup[ghosts] = owned.size + np.arange(ghosts.size)
        # Empty parts keep a 1-vertex placeholder graph (Graph requires
        # a positive vertex count); callers slice by num_owned.
        return Graph(lookup[s], lookup[d], max(int(owned.size + ghosts.size), 1))

    return PartSubgraph(
        part_id=part,
        owned=owned,
        ghost_src=ghost_src,
        in_edge_ids=in_eids,
        in_graph=local_graph(ghost_src, src_g, dst_g),
        ghost_dst=ghost_dst,
        out_edge_ids=out_eids,
        out_graph=local_graph(ghost_dst, osrc_g, odst_g),
    )


# ======================================================================
# The partition object
# ======================================================================
@dataclass(frozen=True)
class GraphPartition:
    """A graph split into disjoint owned vertex sets plus halo maps."""

    graph: Graph
    assignment: np.ndarray
    num_parts: int
    method: str
    parts: Tuple[PartSubgraph, ...]
    #: ``vertex_owner_row[v]`` — row of global vertex ``v`` inside its
    #: owner's owned-vertex block (halo fetches index through this).
    vertex_owner_row: np.ndarray
    #: ``edge_owner_row[e]`` — row of global edge ``e`` inside its
    #: owner's owned-edge block.
    edge_owner_row: np.ndarray

    # ------------------------------------------------------------------
    @property
    def edge_owner(self) -> np.ndarray:
        """Owning part of each edge (the owner of its destination)."""
        return self.assignment[self.graph.dst]

    @property
    def cut_edges(self) -> int:
        """Edges whose endpoints live on different parts."""
        return int(
            (self.assignment[self.graph.src] != self.assignment[self.graph.dst]).sum()
        )

    @property
    def replication_factor(self) -> float:
        """Mean copies of a vertex row across GPUs (owned + ghosts)."""
        total = sum(p.num_local_vertices for p in self.parts)
        return total / max(self.graph.num_vertices, 1)

    def validate(self) -> None:
        """Assert the partition invariants (tests call this).

        Thin shim over the static analyzer's RP6xx partition checker
        (:func:`repro.analysis.partition_checks.check_partition`) —
        one diagnostic vocabulary — keeping the historical
        ``AssertionError`` contract with the same message text.
        """
        from repro.analysis.partition_checks import check_partition

        diags = check_partition(self)
        if diags:
            raise AssertionError(diags[0].message)

    def stats(self) -> "PartitionStats":
        return PartitionStats.from_partition(self)


def partition_graph(
    graph: Graph,
    num_parts: int,
    *,
    method: str = "hash",
    seed: int = 0,
) -> GraphPartition:
    """Split ``graph`` into ``num_parts`` parts with halo maps.

    ``method`` is one of :data:`PARTITION_METHODS`.  Every vertex lands
    in exactly one part; every edge is owned by its destination's part.
    """
    if method not in PARTITION_METHODS:
        raise ValueError(
            f"unknown partition method {method!r}; choose from {PARTITION_METHODS}"
        )
    assignment = _ASSIGNERS[method](graph, num_parts, seed)
    parts = tuple(_build_part(graph, assignment, p) for p in range(num_parts))
    vertex_owner_row = np.empty(graph.num_vertices, dtype=np.int64)
    edge_owner_row = np.empty(graph.num_edges, dtype=np.int64)
    for part in parts:
        vertex_owner_row[part.owned] = np.arange(part.num_owned)
        edge_owner_row[part.in_edge_ids] = np.arange(part.in_edge_ids.size)
    return GraphPartition(
        graph=graph,
        assignment=assignment,
        num_parts=num_parts,
        method=method,
        parts=parts,
        vertex_owner_row=vertex_owner_row,
        edge_owner_row=edge_owner_row,
    )


def receptive_field(graph: Graph, seeds: np.ndarray, hops: int) -> np.ndarray:
    """L-hop in-neighbourhood closure via edge-mask sweeps.

    Equivalent to :func:`~repro.graph.sampling.khop_neighborhood` but
    computed by whole-edge-set membership tests rather than frontier
    BFS — the two implementations cross-check each other in the fuzz
    suite.  This is exactly the vertex set a part must hold (owned plus
    ``hops`` rounds of halo) to compute exact ``hops``-layer GNN
    embeddings of its owned vertices.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    member = np.zeros(graph.num_vertices, dtype=bool)
    seeds = np.asarray(seeds, dtype=np.int64)
    member[seeds] = True
    for _ in range(hops):
        reached = member.copy()
        np.logical_or.at(reached, graph.src, member[graph.dst])
        if (reached == member).all():
            break
        member = reached
    return np.nonzero(member)[0].astype(np.int64)


# ======================================================================
# Degree-level partition summary (analytic substrate)
# ======================================================================
def allreduce_bytes_per_gpu(nbytes: int, num_parts: int) -> int:
    """Bytes each GPU moves in a ring all-reduce of one ``nbytes`` buffer."""
    if num_parts <= 1:
        return 0
    return int(round(2.0 * (num_parts - 1) / num_parts * nbytes))


@dataclass(frozen=True)
class PartitionStats:
    """Per-part :class:`GraphStats` plus halo extents.

    ``parts[p]`` describes part ``p``'s *local* in-graph: vertex extent
    is owned + ghost rows (what a vertex tensor occupies on that GPU),
    edge extent is the owned edges.  ``halo_in_rows[p]`` is the ghost
    row count fetched per vertex-tensor exchange, ``halo_out_rows[p]``
    the remotely-owned edge rows fetched per out-orientation Gather.
    """

    num_parts: int
    parts: Tuple[GraphStats, ...]
    owned_vertices: Tuple[int, ...]
    halo_in_rows: Tuple[int, ...]
    halo_out_rows: Tuple[int, ...]
    cut_edges: int
    total_vertices: int
    total_edges: int

    def __post_init__(self) -> None:
        for field in ("parts", "owned_vertices", "halo_in_rows", "halo_out_rows"):
            if len(getattr(self, field)) != self.num_parts:
                raise ValueError(f"{field} must have one entry per part")

    @property
    def cut_fraction(self) -> float:
        return self.cut_edges / max(self.total_edges, 1)

    # ------------------------------------------------------------------
    @classmethod
    def from_partition(cls, partition: GraphPartition) -> "PartitionStats":
        """Exact summary of a concrete :class:`GraphPartition`."""
        return cls(
            num_parts=partition.num_parts,
            parts=tuple(p.stats() for p in partition.parts),
            owned_vertices=tuple(p.num_owned for p in partition.parts),
            halo_in_rows=tuple(p.halo_in_rows for p in partition.parts),
            halo_out_rows=tuple(p.halo_out_edges for p in partition.parts),
            cut_edges=partition.cut_edges,
            total_vertices=partition.graph.num_vertices,
            total_edges=partition.graph.num_edges,
        )

    @classmethod
    def from_stats(
        cls, stats: GraphStats, num_parts: int
    ) -> "PartitionStats":
        """Expected hash-partition summary from degree arrays alone.

        This is how stats-only workloads (the full 115M-edge Reddit
        graph) enter the multi-GPU pipeline.  Under uniform random
        vertex assignment:

        - part ``p`` owns the stride sample ``p::P`` of the degree
          arrays (its owned edge count is that sample's in-degree sum),
        - a vertex ``u`` is a ghost of part ``p`` with probability
          ``(1 - 1/P) · (1 - (1 - 1/P)^d_out(u))`` — not owned there,
          but at least one out-edge lands there,
        - a fraction ``(P-1)/P`` of edges are cut.
        """
        _check_parts(num_parts)
        if num_parts == 1:
            return cls(
                num_parts=1,
                parts=(stats,),
                owned_vertices=(stats.num_vertices,),
                halo_in_rows=(0,),
                halo_out_rows=(0,),
                cut_edges=0,
                total_vertices=stats.num_vertices,
                total_edges=stats.num_edges,
            )
        P = num_parts
        cut_frac = (P - 1) / P
        d_out = stats.out_degrees.astype(np.float64)
        ghost_prob = (1.0 - 1.0 / P) * (1.0 - (1.0 - 1.0 / P) ** d_out)
        expected_ghosts = int(round(ghost_prob.sum()))

        parts, owned, halo_in, halo_out = [], [], [], []
        for p in range(P):
            ind = stats.in_degrees[p::P].astype(np.int64)
            outd_sample = stats.out_degrees[p::P].astype(np.int64)
            edges_p = int(ind.sum())
            ghosts_p = expected_ghosts
            # Local out-degrees: owned vertices keep the uncut share of
            # their out-edges, ghosts carry the cut edges in — rescaled
            # so both degree sums equal the owned edge count exactly.
            own_out = _rescale_to_sum(
                outd_sample, int(round((1.0 - cut_frac) * edges_p))
            )
            ghost_out = _rescale_to_sum(
                np.ones(ghosts_p, dtype=np.int64), edges_p - int(own_out.sum())
            )
            parts.append(
                GraphStats(
                    num_vertices=int(ind.size + ghosts_p),
                    num_edges=edges_p,
                    in_degrees=np.concatenate(
                        [ind, np.zeros(ghosts_p, dtype=np.int64)]
                    ),
                    out_degrees=np.concatenate([own_out, ghost_out]),
                )
            )
            owned.append(int(ind.size))
            halo_in.append(ghosts_p)
            halo_out.append(int(round(cut_frac * outd_sample.sum())))
        return cls(
            num_parts=P,
            parts=tuple(parts),
            owned_vertices=tuple(owned),
            halo_in_rows=tuple(halo_in),
            halo_out_rows=tuple(halo_out),
            cut_edges=int(round(cut_frac * stats.num_edges)),
            total_vertices=stats.num_vertices,
            total_edges=stats.num_edges,
        )


def _rescale_to_sum(arr: np.ndarray, target: int) -> np.ndarray:
    """Round ``arr`` to integers summing exactly to ``target`` (≥ 0).

    Deterministic largest-remainder rounding; degenerate inputs (empty,
    all-zero) spread the target uniformly.
    """
    target = max(int(target), 0)
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    arr = np.maximum(arr.astype(np.float64), 0.0)
    total = arr.sum()
    if total <= 0:
        arr = np.ones(arr.size, dtype=np.float64)
        total = float(arr.size)
    scaled = arr * (target / total)
    base = np.floor(scaled).astype(np.int64)
    remainder = target - int(base.sum())
    if remainder > 0:
        order = np.argsort(-(scaled - base), kind="stable")
        base[order[:remainder]] += 1
    return base
