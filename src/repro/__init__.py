"""repro — reproduction of "Understanding GNN Computational Graph: A
Coordinated Computation, IO, and Memory Perspective" (MLSys 2022).

The library implements the paper's operator abstraction, its three
optimization passes (propagation-postponed reorganization, unified
thread-mapping fusion, intermediate-data recomputation) as a
composable pass pipeline, a numerically exact NumPy execution engine,
an analytic counter/latency substrate that stands in for the paper's
GPUs, and the baseline systems the paper compares against — all over
one shared IR.  Models, strategies, passes, GPUs and datasets live in
unified registries (:mod:`repro.registry`) that user code extends with
decorators.

Quick start — the fluent Session API::

    import repro

    report = (
        repro.session()
        .model("gat").dataset("cora")
        .strategy("ours").gpu("RTX3090")
        .report(train_steps=5)
    )
    print(report.summary())            # exact FLOPs/IO/memory + latency

Sweep the design space (plans are compiled once per model × strategy
and reused across datasets, GPUs, and GPU counts)::

    sweep = repro.run_sweep(
        models=["gat", "gcn"], datasets=["cora", "pubmed"],
        strategies=["dgl-like", "ours"], feature_dim=64,
    )
    print(sweep.table())

Scale out to a partitioned multi-GPU cluster — per-GPU counters,
halo-exchange traffic, and the comm/compute split::

    report = (
        repro.session()
        .model("gat").dataset("cora").strategy("fuse_all")
        .cluster("V100", 4)
        .run()
    )
    print(report.summary())

The concrete twin, :class:`repro.exec.MultiEngine`, executes the same
plans per-partition with explicit NumPy halo exchange and reproduces
single-GPU results exactly (see README, "differential-testing
contract").

Sampled mini-batch training (GraphSAGE / Cluster-GCN style) — per-batch
receptive-field accounting where feature gathers dominate the IO term::

    report = (
        repro.session()
        .model("sage").dataset("pubmed").strategy("ours")
        .minibatch(batch_size=1024)
        .report(train_steps=2)        # one step = one sampled epoch
    )
    print(report.summary())           # epoch IO incl. gathers, per-batch peak

The concrete twin, :class:`repro.train.MiniBatchTrainer`, reproduces
the full-graph :class:`repro.train.Trainer` bit for bit in the
full-batch limit.

Online inference serving — micro-batched requests, LRU feature caching,
and SLO-aware scheduling on a virtual clock::

    report = (
        repro.session()
        .model("gat").dataset("pubmed").strategy("ours").gpu("RTX3090")
        .serve(num_requests=256, qps=4000.0, cache_rows=8192, seed=0)
    )
    print(report.summary())           # p50/p95/p99, SLO violations, hit rate

The served outputs are bit-identical to direct :class:`repro.Engine`
runs on each batch's induced subgraph, and the same seed reproduces the
identical :class:`repro.ServeReport`.

Extend without touching library source::

    from repro.registry import register_strategy, register_pass
    from repro.frameworks.strategy import ExecutionStrategy

    register_strategy(ExecutionStrategy(
        name="mine", fusion_mode="edge_chains", recompute_policy="boundary",
    ))
    repro.session().model("gat").dataset("cora").strategy("mine").counters()

The lower-level entry points (``compile_training``, ``get_strategy``,
``run_experiment``) remain available.  See ``examples/`` for runnable
end-to-end scripts and ``benchmarks/`` for the per-figure reproduction
harness.
"""

from repro.graph import (
    Graph,
    GraphPartition,
    GraphStats,
    PartitionSpec,
    PartitionStats,
    get_dataset,
    list_datasets,
    partition_graph,
)
from repro.frameworks import (
    compile_forward,
    compile_training,
    get_strategy,
    list_strategies,
)
from repro.gpu import (
    RTX2080,
    RTX3090,
    V100,
    Cluster,
    ClusterCostModel,
    CostModel,
    SimulatedOOM,
    get_gpu,
    make_cluster,
)
from repro.exec import Engine, MultiEngine
from repro.dyn import (
    DynamicGraph,
    FeatureStore,
    GraphDelta,
    UpdateEvent,
    mixed_workload,
    update_workload,
)
from repro.serve import (
    BatchPolicy,
    InferenceRequest,
    InferenceServer,
    ServeReport,
    bursty_workload,
    poisson_workload,
)
from repro.train import Adam, MiniBatchTrainer, SGD, Trainer
from repro.session import (
    PlanCache,
    Session,
    SweepReport,
    run_sweep,
    session,
)
from repro.experiment import run_experiment
from repro.registry import (
    register_dataset,
    register_gpu,
    register_model,
    register_pass,
    register_strategy,
)

__version__ = "1.1.0"

__all__ = [
    "Graph",
    "GraphStats",
    "GraphPartition",
    "PartitionSpec",
    "PartitionStats",
    "partition_graph",
    "get_dataset",
    "list_datasets",
    "compile_forward",
    "compile_training",
    "get_strategy",
    "list_strategies",
    "RTX2080",
    "RTX3090",
    "V100",
    "Cluster",
    "ClusterCostModel",
    "make_cluster",
    "CostModel",
    "SimulatedOOM",
    "get_gpu",
    "Engine",
    "MultiEngine",
    "BatchPolicy",
    "InferenceRequest",
    "InferenceServer",
    "ServeReport",
    "poisson_workload",
    "bursty_workload",
    "DynamicGraph",
    "GraphDelta",
    "FeatureStore",
    "UpdateEvent",
    "mixed_workload",
    "update_workload",
    "Adam",
    "SGD",
    "Trainer",
    "MiniBatchTrainer",
    "run_experiment",
    "Session",
    "session",
    "PlanCache",
    "SweepReport",
    "run_sweep",
    "register_model",
    "register_strategy",
    "register_pass",
    "register_gpu",
    "register_dataset",
    "__version__",
]
