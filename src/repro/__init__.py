"""repro — reproduction of "Understanding GNN Computational Graph: A
Coordinated Computation, IO, and Memory Perspective" (MLSys 2022).

The library implements the paper's operator abstraction, its three
optimization passes (propagation-postponed reorganization, unified
thread-mapping fusion, intermediate-data recomputation), a numerically
exact NumPy execution engine, an analytic counter/latency substrate
that stands in for the paper's GPUs, and the baseline systems the paper
compares against — all over one shared IR.

Quick start::

    from repro import compile_training, get_strategy, get_dataset, RTX3090
    from repro.models import GAT

    model = GAT(in_dim=64, hidden_dims=(64, 7), heads=4)
    compiled = compile_training(model, get_strategy("ours"))
    stats = get_dataset("cora").stats
    counters = compiled.counters(stats)          # exact FLOPs/IO/memory
    seconds = compiled.latency_seconds(stats, RTX3090)

See ``examples/`` for runnable end-to-end scripts and ``benchmarks/``
for the per-figure reproduction harness.
"""

from repro.graph import Graph, GraphStats, get_dataset, list_datasets
from repro.frameworks import (
    compile_forward,
    compile_training,
    get_strategy,
    list_strategies,
)
from repro.gpu import RTX2080, RTX3090, CostModel, SimulatedOOM, get_gpu
from repro.train import Adam, SGD, Trainer
from repro.experiment import run_experiment

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphStats",
    "get_dataset",
    "list_datasets",
    "compile_forward",
    "compile_training",
    "get_strategy",
    "list_strategies",
    "RTX2080",
    "RTX3090",
    "CostModel",
    "SimulatedOOM",
    "get_gpu",
    "Adam",
    "SGD",
    "Trainer",
    "run_experiment",
    "__version__",
]
