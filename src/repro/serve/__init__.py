"""Online inference serving: request batching, feature caching, and
SLO-aware multi-tenant scheduling over the compiled-plan substrate.

The serving stack reuses every existing subsystem under a new workload
shape: receptive fields come from the sampling layer, per-batch costing
from the analytic walker, the virtual clock from the GPU cost model,
pools from :class:`~repro.gpu.cluster.Cluster`, arenas from the memory
planner, and execution from the ordinary engine.  Entry points:

- :class:`InferenceServer` — the server itself,
- :func:`poisson_workload` / :func:`bursty_workload` — seeded open-loop
  request generators,
- :class:`ServeReport` — tail latency, throughput, SLO and cache
  accounting,
- ``Session.serve(...)`` / ``run_sweep(serve_qps=[...])`` — the fluent
  front door.
"""

from repro.serve.batcher import (
    BatchPolicy,
    MicroBatch,
    coalesce,
    receptive_field,
)
from repro.serve.cache import FeatureCache, GatherSplit
from repro.serve.metrics import BatchTrace, RequestOutcome, ServeReport
from repro.serve.request import (
    InferenceRequest,
    bursty_workload,
    draw_seeds,
    poisson_workload,
    zipf_seed_probabilities,
)
from repro.serve.scheduler import (
    SCHEDULER_POLICIES,
    PendingBatch,
    Placement,
    place_batches,
)
from repro.serve.server import InferenceServer

__all__ = [
    "BatchPolicy",
    "MicroBatch",
    "coalesce",
    "receptive_field",
    "FeatureCache",
    "GatherSplit",
    "BatchTrace",
    "RequestOutcome",
    "ServeReport",
    "InferenceRequest",
    "poisson_workload",
    "bursty_workload",
    "draw_seeds",
    "zipf_seed_probabilities",
    "SCHEDULER_POLICIES",
    "PendingBatch",
    "Placement",
    "place_batches",
    "InferenceServer",
]
