"""Serving metrics: per-request outcomes rolled up into a ServeReport.

The report is the serving twin of :class:`~repro.session.ExperimentReport`:
tail latency (p50/p95/p99 over per-request latencies on the virtual
clock), throughput over the makespan, SLO-violation accounting per
tenant, cache hit rates with exact byte reconciliation, and per-GPU
utilization.  ``counters`` reuses
:class:`~repro.exec.profiler.MiniBatchCounters` — a served batch is
priced exactly like a sampled-training batch (kernel counters on its
field stats plus the gather bill), with the one serving twist that
``gather_bytes`` only charges cache *misses*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exec.profiler import BatchCost, MiniBatchCounters

__all__ = ["RequestOutcome", "BatchTrace", "ServeReport"]


@dataclass(frozen=True)
class RequestOutcome:
    """One request's journey through the server on the virtual clock.

    ``snapshot_s`` is the virtual-clock time of the graph/feature
    snapshot the request was answered against (dynamic serving only;
    ``None`` on a static run).
    """

    request_id: int
    tenant: str
    num_seeds: int
    arrival_s: float
    start_s: float
    finish_s: float
    deadline_s: float
    gpu: int
    snapshot_s: Optional[float] = None

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion time (queueing + batching + service)."""
        return self.finish_s - self.arrival_s

    @property
    def violated(self) -> bool:
        return self.finish_s > self.deadline_s

    @property
    def staleness_s(self) -> float:
        """How old the answered-against snapshot is at delivery time —
        the freshness cost of answering from the dispatch-time state.
        0 on static runs."""
        if self.snapshot_s is None:
            return 0.0
        return self.finish_s - self.snapshot_s


@dataclass(frozen=True)
class BatchTrace:
    """One micro-batch's costing and placement.

    ``cost.gather_bytes`` is the *paid* (cache-miss plus invalidated
    re-gather) gather bill; the split reconciles exactly with the
    uncached convention:
    ``hit_bytes + miss_bytes + invalidated_bytes == cost.field × row
    bytes``.  ``graph_version``/``feature_version`` record the dynamic
    state the batch was costed and executed against (0 on static runs);
    the snapshot is the one current at ``dispatch_s``.
    """

    tenant: str
    request_ids: Tuple[int, ...]
    dispatch_s: float
    start_s: float
    finish_s: float
    gpu: int
    cost: BatchCost
    hit_bytes: int
    miss_bytes: int
    invalidated_bytes: int = 0
    graph_version: int = 0
    feature_version: int = 0

    @property
    def num_requests(self) -> int:
        return len(self.request_ids)

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def queue_s(self) -> float:
        """Time the dispatched batch waited for a free GPU."""
        return self.start_s - self.dispatch_s

    @property
    def uncached_gather_bytes(self) -> int:
        """What the gather would cost with no cache (the reconciliation
        anchor: always equals ``hit + miss + invalidated`` bytes)."""
        return self.hit_bytes + self.miss_bytes + self.invalidated_bytes


@dataclass
class ServeReport:
    """Everything one serving run produced.

    ``outputs`` maps request ids to their delivered seed-row model
    outputs (empty when the server ran with ``execute=False`` — the
    virtual clock and every metric are analytic and do not depend on
    concrete execution).
    """

    outcomes: List[RequestOutcome]
    batches: List[BatchTrace]
    num_gpus: int
    gpu_busy_s: List[float]
    batch_policy_max: int
    batch_policy_wait_s: float
    scheduler_policy: str
    cache_rows: int
    num_vertices: int
    outputs: Dict[int, np.ndarray] = field(default_factory=dict)
    # -- async runtime (defaulted on serial runs) ----------------------
    #: Overlap mode the run was placed under (``None`` = serial clock).
    overlap: Optional[str] = None
    #: Makespan the same batches take on the serial single-channel
    #: clock (0.0 on serial runs, where it would equal ``makespan_s``).
    serialized_makespan_s: float = 0.0
    # -- dynamic serving (all zero/defaulted on a static run) ----------
    graph_version: int = 0
    feature_version: int = 0
    num_graph_updates: int = 0
    num_feature_updates: int = 0
    compactions: int = 0
    delta_apply_bytes: int = 0
    compact_bytes: int = 0
    feature_put_bytes: int = 0

    # -- request-level aggregates --------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.outcomes)

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def latencies_s(self) -> np.ndarray:
        return np.array([o.latency_s for o in self.outcomes], dtype=np.float64)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile (``q`` in [0, 100]) over all requests."""
        lat = self.latencies_s
        return float(np.percentile(lat, q)) if lat.size else 0.0

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile(95)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99)

    @property
    def mean_latency_s(self) -> float:
        lat = self.latencies_s
        return float(lat.mean()) if lat.size else 0.0

    @property
    def makespan_s(self) -> float:
        """Virtual-clock horizon: the last batch completion."""
        return max((o.finish_s for o in self.outcomes), default=0.0)

    @property
    def throughput_rps(self) -> float:
        span = self.makespan_s
        return self.num_requests / span if span > 0 else 0.0

    @property
    def overlap_efficiency(self) -> float:
        """Serialized ÷ overlapped makespan (1.0 on serial runs)."""
        if self.overlap is None or self.makespan_s <= 0.0:
            return 1.0
        return self.serialized_makespan_s / self.makespan_s

    @property
    def mean_batch_requests(self) -> float:
        return (
            self.num_requests / self.num_batches if self.num_batches else 0.0
        )

    # -- SLO accounting ------------------------------------------------
    @property
    def slo_violations(self) -> int:
        return sum(1 for o in self.outcomes if o.violated)

    @property
    def slo_violation_rate(self) -> float:
        n = self.num_requests
        return self.slo_violations / n if n else 0.0

    @property
    def violations_by_tenant(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for o in self.outcomes:
            out.setdefault(o.tenant, 0)
            if o.violated:
                out[o.tenant] += 1
        return out

    # -- cache accounting ----------------------------------------------
    @property
    def gather_hit_bytes(self) -> int:
        return sum(b.hit_bytes for b in self.batches)

    @property
    def gather_miss_bytes(self) -> int:
        return sum(b.miss_bytes for b in self.batches)

    @property
    def gather_invalidated_bytes(self) -> int:
        """Re-gather bytes attributable to feature-write invalidations."""
        return sum(b.invalidated_bytes for b in self.batches)

    @property
    def uncached_gather_bytes(self) -> int:
        return sum(b.uncached_gather_bytes for b in self.batches)

    @property
    def cache_hit_rate(self) -> float:
        """Byte-level hit share of all field-row gathers."""
        total = self.uncached_gather_bytes
        return self.gather_hit_bytes / total if total > 0 else 0.0

    @property
    def invalidation_rate(self) -> float:
        """Byte share of the gather bill re-fetched because a feature
        write invalidated the cached row."""
        total = self.uncached_gather_bytes
        return self.gather_invalidated_bytes / total if total > 0 else 0.0

    # -- freshness accounting ------------------------------------------
    @property
    def num_updates(self) -> int:
        return self.num_graph_updates + self.num_feature_updates

    @property
    def mutation_io_bytes(self) -> int:
        """Total write-side IO: delta appends + compactions + feature
        puts."""
        return (
            self.delta_apply_bytes + self.compact_bytes
            + self.feature_put_bytes
        )

    @property
    def mean_staleness_s(self) -> float:
        """Mean snapshot age at delivery, over requests that carried a
        dynamic snapshot (0.0 for a static run)."""
        ages = [
            o.staleness_s for o in self.outcomes if o.snapshot_s is not None
        ]
        return float(np.mean(ages)) if ages else 0.0

    # -- device accounting ---------------------------------------------
    @property
    def gpu_utilization(self) -> List[float]:
        span = self.makespan_s
        if span <= 0:
            return [0.0] * self.num_gpus
        return [busy / span for busy in self.gpu_busy_s]

    @property
    def counters(self) -> MiniBatchCounters:
        """Served batches as mini-batch counters (flops / IO / per-batch
        peak roll up through the existing aggregation)."""
        return MiniBatchCounters(
            batches=[b.cost for b in self.batches],
            num_vertices=self.num_vertices,
        )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        counters = self.counters
        util = self.gpu_utilization
        lines = [
            f"served {self.num_requests} requests in {self.num_batches} "
            f"batches ({self.mean_batch_requests:.1f} req/batch, "
            f"{self.scheduler_policy} on {self.num_gpus} gpu"
            f"{'s' if self.num_gpus != 1 else ''})",
            f"  latency        p50 {self.p50_latency_s * 1e3:.2f} ms, "
            f"p95 {self.p95_latency_s * 1e3:.2f} ms, "
            f"p99 {self.p99_latency_s * 1e3:.2f} ms",
            f"  throughput     {self.throughput_rps:.0f} req/s over "
            f"{self.makespan_s * 1e3:.1f} ms",
            f"  slo            {self.slo_violations} violated "
            f"({self.slo_violation_rate * 100:.1f}%)",
        ]
        if self.overlap is not None:
            lines.append(
                f"  overlap        {self.overlap}: gathers on the io "
                f"channel, serialized {self.serialized_makespan_s * 1e3:.1f}"
                f" ms / overlapped {self.makespan_s * 1e3:.1f} ms "
                f"(efficiency {self.overlap_efficiency:.2f}x)"
            )
        lines += [
            f"  gather         {self.gather_miss_bytes / 2**20:.2f} MiB paid, "
            f"{self.gather_hit_bytes / 2**20:.2f} MiB cached "
            f"(hit rate {self.cache_hit_rate * 100:.1f}%, "
            f"{self.cache_rows} cache rows)",
        ]
        if self.num_updates:
            lines += [
                f"  updates        {self.num_graph_updates} graph + "
                f"{self.num_feature_updates} feature "
                f"(graph v{self.graph_version}, features "
                f"v{self.feature_version}, {self.compactions} compactions)",
                f"  mutation io    "
                f"{self.delta_apply_bytes / 2**20:.3f} MiB delta, "
                f"{self.compact_bytes / 2**20:.3f} MiB compact, "
                f"{self.feature_put_bytes / 2**20:.3f} MiB puts",
                f"  freshness      "
                f"{self.gather_invalidated_bytes / 2**20:.3f} MiB "
                f"invalidated re-gathers "
                f"({self.invalidation_rate * 100:.1f}%), mean staleness "
                f"{self.mean_staleness_s * 1e3:.2f} ms",
            ]
        lines += [
            f"  kernel io      {counters.compute_io_bytes / 2**20:.2f} MiB, "
            f"per-batch peak {counters.peak_memory_bytes / 2**20:.2f} MiB",
            "  utilization    "
            + ", ".join(f"gpu{i} {u * 100:.0f}%" for i, u in enumerate(util)),
        ]
        return "\n".join(lines)
