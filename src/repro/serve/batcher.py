"""Dynamic micro-batching of queued inference requests.

A GNN inference request is dominated by its receptive-field gather, and
nearby requests share field vertices — so the server coalesces queued
requests into one receptive-field batch.  The policy is the classic
``max_batch`` / ``max_wait`` micro-batcher: a batch dispatches as soon
as it holds ``max_batch`` requests, or when its oldest request has
waited ``max_wait_s``, whichever comes first.

Batching trades latency for efficiency both ways: at low load requests
eat the ``max_wait`` timeout; at high load batches fill instantly and
amortise the per-batch receptive-field expansion.

:func:`receptive_field` reuses the sampling-layer machinery
(:func:`~repro.graph.sampling.khop_neighborhood` +
:func:`~repro.graph.sampling.induced_subgraph`) and returns the same
:class:`~repro.graph.sampling.MiniBatch` schedule the mini-batch
trainer consumes — serving is the inference-side twin of sampled
training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.csr import Graph
from repro.graph.sampling import (
    MiniBatch,
    induced_subgraph,
    khop_neighborhood,
)
from repro.serve.request import InferenceRequest

__all__ = ["BatchPolicy", "MicroBatch", "coalesce", "receptive_field"]


@dataclass(frozen=True)
class BatchPolicy:
    """Micro-batching knobs.

    ``max_batch`` is in *requests* (their seed sets are unioned);
    ``max_wait_s`` bounds how long the oldest queued request may wait
    before the batch dispatches anyway.
    """

    max_batch: int = 8
    max_wait_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")


@dataclass(frozen=True)
class MicroBatch:
    """A coalesced group of requests dispatched together.

    ``dispatch_s`` is when the batcher released the batch (the fill
    time if ``max_batch`` was reached, the oldest request's timeout
    otherwise); ``deadline_s`` is the earliest member deadline — what
    an EDF scheduler sorts on.
    """

    tenant: str
    requests: Tuple[InferenceRequest, ...]
    dispatch_s: float

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a MicroBatch needs at least one request")

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def seeds(self) -> np.ndarray:
        """Deduplicated, sorted union of the member requests' seeds."""
        return np.unique(np.concatenate([r.seeds for r in self.requests]))

    @property
    def oldest_arrival_s(self) -> float:
        return min(r.arrival_s for r in self.requests)

    @property
    def deadline_s(self) -> float:
        return min(r.deadline_s for r in self.requests)


def coalesce(
    requests: Sequence[InferenceRequest], policy: BatchPolicy
) -> List[MicroBatch]:
    """Run the open-loop batcher over one tenant's request stream.

    Requests are processed in arrival order.  A batch opens at its
    first request's arrival ``t0`` and closes at ``t0 + max_wait_s``;
    every request arriving before the close joins until ``max_batch``
    is reached.  A filled batch dispatches at the arrival that filled
    it, an unfilled one at its close — the batcher is open-loop
    (dispatch times depend only on arrivals, never on downstream GPU
    availability; queueing happens in the scheduler).
    """
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    tenants = {r.tenant for r in ordered}
    if len(tenants) > 1:
        raise ValueError(
            f"coalesce() batches one tenant queue at a time, got {sorted(tenants)}"
        )
    batches: List[MicroBatch] = []
    i, n = 0, len(ordered)
    while i < n:
        close = ordered[i].arrival_s + policy.max_wait_s
        j = i
        while (
            j < n
            and j - i < policy.max_batch
            and ordered[j].arrival_s <= close
        ):
            j += 1
        filled = j - i == policy.max_batch
        dispatch = ordered[j - 1].arrival_s if filled else close
        batches.append(
            MicroBatch(
                tenant=ordered[i].tenant,
                requests=tuple(ordered[i:j]),
                dispatch_s=float(dispatch),
            )
        )
        i = j
    return batches


def receptive_field(graph: Graph, seeds: np.ndarray, hops: int) -> MiniBatch:
    """Expand a seed set to its ``hops``-hop receptive-field schedule.

    Identical construction to one :func:`~repro.graph.sampling.plan_minibatches`
    step (sorted unique seeds → k-hop in-neighbourhood → induced
    subgraph), so a server batch is bit-compatible with a direct
    engine run on the same induced subgraph.
    """
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    field = khop_neighborhood(graph, seeds, hops)
    sub, kept, eids = induced_subgraph(graph, field)
    # kept is sorted (khop output), so positions come from bisect.
    seed_index = np.searchsorted(kept, seeds)
    return MiniBatch(
        seeds=seeds,
        vertices=kept,
        subgraph=sub,
        edge_ids=eids,
        seed_index=seed_index,
    )
