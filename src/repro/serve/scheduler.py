"""SLO-aware placement of micro-batches onto a GPU pool.

The server's virtual clock is discrete-event: every micro-batch carries
a dispatch time (from the batcher), a modelled service time (from the
cost model), and a deadline (the earliest member request's).  The
scheduler replays the event sequence deterministically:

- the GPU that frees earliest takes the next decision point,
- among batches already dispatched by then, the policy picks one —
  ``"edf"`` (earliest deadline first, the SLO-aware policy) or
  ``"fifo"`` (dispatch order),
- if nothing is pending, the clock advances to the next dispatch.

Ties break on (dispatch, submission order), so placement is a pure
function of the inputs — the determinism the serve report contract
relies on.  Whole batches are placed on single GPUs (no partitioning),
so a :class:`~repro.gpu.cluster.Cluster` acts as a homogeneous pool;
per-GPU busy time feeds the utilization metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["PendingBatch", "Placement", "place_batches", "SCHEDULER_POLICIES"]

SCHEDULER_POLICIES = ("edf", "fifo")


@dataclass(frozen=True)
class PendingBatch:
    """What the scheduler needs to know about one dispatched batch."""

    dispatch_s: float
    service_s: float
    deadline_s: float

    def __post_init__(self) -> None:
        if self.service_s < 0:
            raise ValueError("service_s must be non-negative")


@dataclass(frozen=True)
class Placement:
    """One batch's slot on the pool timeline."""

    index: int          # position in the submitted batch sequence
    gpu: int
    start_s: float
    finish_s: float

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s


def place_batches(
    batches: Sequence[PendingBatch],
    num_gpus: int,
    *,
    policy: str = "edf",
) -> List[Placement]:
    """Assign every batch a (gpu, start, finish) slot.

    Returns placements in submission order (``placements[i]`` is
    ``batches[i]``'s slot).  Work is conserved: a batch starts at
    ``max(gpu free time, its dispatch)`` and holds the GPU for its
    service time.
    """
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    if policy not in SCHEDULER_POLICIES:
        raise ValueError(
            f"unknown scheduler policy {policy!r}; use one of "
            f"{SCHEDULER_POLICIES}"
        )
    free = [0.0] * num_gpus
    pending = list(range(len(batches)))
    placements: List[Placement] = [None] * len(batches)  # type: ignore[list-item]

    def sort_key(i: int):
        b = batches[i]
        if policy == "edf":
            return (b.deadline_s, b.dispatch_s, i)
        return (b.dispatch_s, i)

    while pending:
        gpu = min(range(num_gpus), key=lambda g: (free[g], g))
        now = free[gpu]
        ready = [i for i in pending if batches[i].dispatch_s <= now]
        if not ready:
            # Idle pool: advance this GPU's clock to the next dispatch.
            now = min(batches[i].dispatch_s for i in pending)
            ready = [i for i in pending if batches[i].dispatch_s <= now]
        pick = min(ready, key=sort_key)
        start = max(now, batches[pick].dispatch_s)
        finish = start + batches[pick].service_s
        free[gpu] = finish
        placements[pick] = Placement(
            index=pick, gpu=gpu, start_s=start, finish_s=finish
        )
        pending.remove(pick)
    return placements
