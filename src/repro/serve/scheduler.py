"""SLO-aware placement of micro-batches onto a GPU pool.

The server's virtual clock is discrete-event: every micro-batch carries
a dispatch time (from the batcher), a modelled service time (from the
cost model), and a deadline (the earliest member request's).  The
scheduler replays the event sequence deterministically:

- the GPU that frees earliest takes the next decision point,
- among batches already dispatched by then, the policy picks one —
  ``"edf"`` (earliest deadline first, the SLO-aware policy) or
  ``"fifo"`` (dispatch order),
- if nothing is pending, the clock advances to the next dispatch.

Ties break on (dispatch, submission order), so placement is a pure
function of the inputs — the determinism the serve report contract
relies on.  Whole batches are placed on single GPUs (no partitioning),
so a :class:`~repro.gpu.cluster.Cluster` acts as a homogeneous pool;
per-GPU busy time feeds the utilization metrics.

The event-queue core lives in :class:`repro.runtime.EventLoop` (one
``"gpu"`` channel group, one lane per pool GPU); EDF/FIFO are expressed
as task sort keys.  The loop's decision rule — earliest feasible start,
ties on sort key then submission order — reproduces the historical
placement loop bit for bit, which the serve goldens pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.runtime.events import EventLoop, Task

__all__ = [
    "PendingBatch",
    "Placement",
    "place_batches",
    "place_batches_overlapped",
    "SCHEDULER_POLICIES",
]

SCHEDULER_POLICIES = ("edf", "fifo")


@dataclass(frozen=True)
class PendingBatch:
    """What the scheduler needs to know about one dispatched batch."""

    dispatch_s: float
    service_s: float
    deadline_s: float

    def __post_init__(self) -> None:
        if self.service_s < 0:
            raise ValueError("service_s must be non-negative")


@dataclass(frozen=True)
class Placement:
    """One batch's slot on the pool timeline."""

    index: int          # position in the submitted batch sequence
    gpu: int
    start_s: float
    finish_s: float

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s


def place_batches(
    batches: Sequence[PendingBatch],
    num_gpus: int,
    *,
    policy: str = "edf",
) -> List[Placement]:
    """Assign every batch a (gpu, start, finish) slot.

    Returns placements in submission order (``placements[i]`` is
    ``batches[i]``'s slot).  Work is conserved: a batch starts at
    ``max(gpu free time, its dispatch)`` and holds the GPU for its
    service time.
    """
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    if policy not in SCHEDULER_POLICIES:
        raise ValueError(
            f"unknown scheduler policy {policy!r}; use one of "
            f"{SCHEDULER_POLICIES}"
        )

    def sort_key(i: int):
        b = batches[i]
        if policy == "edf":
            return (b.deadline_s, b.dispatch_s)
        return (b.dispatch_s,)

    tasks = [
        Task(
            key=i,
            group="gpu",
            duration_s=b.service_s,
            ready_s=b.dispatch_s,
            sort_key=sort_key(i),
        )
        for i, b in enumerate(batches)
    ]
    slots = EventLoop({"gpu": num_gpus}).run(tasks)
    return [
        Placement(
            index=i,
            gpu=slots[i].lane,
            start_s=slots[i].start_s,
            finish_s=slots[i].finish_s,
        )
        for i in range(len(batches))
    ]


def place_batches_overlapped(
    batches: Sequence[PendingBatch],
    num_gpus: int,
    *,
    gather_s: Sequence[float],
    compute_s: Sequence[float],
    policy: str = "edf",
) -> List[Placement]:
    """Place batches with feature gathers pipelined against compute.

    The serial clock (:func:`place_batches`) holds a GPU for the whole
    ``gather + compute`` service; here the two halves run on separate
    channel groups — ``"io"`` (cache-miss feature gathers over the host
    link) and ``"compute"`` (the kernel stream), each with one lane per
    pool GPU — so a batch's gather can stream in while the previous
    batch still computes.  A batch's compute waits only for its own
    gather; the policy sort keys and the loop's deterministic
    tie-breaking are the same as the serial scheduler's, so placement
    remains a pure function of the inputs.

    Each returned :class:`Placement` spans gather start to compute
    finish on the compute lane the batch's kernels ran on — per-request
    latency keeps its serial meaning while the makespan contracts.
    """
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    if policy not in SCHEDULER_POLICIES:
        raise ValueError(
            f"unknown scheduler policy {policy!r}; use one of "
            f"{SCHEDULER_POLICIES}"
        )
    if len(gather_s) != len(batches) or len(compute_s) != len(batches):
        raise ValueError(
            "gather_s and compute_s must have one entry per batch"
        )

    def sort_key(i: int):
        b = batches[i]
        if policy == "edf":
            return (b.deadline_s, b.dispatch_s)
        return (b.dispatch_s,)

    tasks: List[Task] = []
    for i, b in enumerate(batches):
        tasks.append(
            Task(
                key=("gather", i),
                group="io",
                duration_s=gather_s[i],
                ready_s=b.dispatch_s,
                sort_key=sort_key(i),
            )
        )
        tasks.append(
            Task(
                key=("compute", i),
                group="compute",
                duration_s=compute_s[i],
                deps=(("gather", i),),
                sort_key=sort_key(i),
            )
        )
    slots = EventLoop({"io": num_gpus, "compute": num_gpus}).run(tasks)
    return [
        Placement(
            index=i,
            gpu=slots[("compute", i)].lane,
            start_s=slots[("gather", i)].start_s,
            finish_s=slots[("compute", i)].finish_s,
        )
        for i in range(len(batches))
    ]
