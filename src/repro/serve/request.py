"""Inference requests and synthetic open-loop workload generators.

Online serving is driven by *requests*: a tenant asks for the model
outputs of a handful of seed vertices and expects them within an SLO.
This module defines the request record and the seeded generators the
serving experiments run on:

- :func:`poisson_workload` — open-loop Poisson arrivals (exponential
  inter-arrival gaps at a target QPS),
- :func:`bursty_workload` — the same mean rate delivered in bursts
  (requests arrive in groups, the worst case for a micro-batcher's
  queueing delay),
- :func:`zipf_seed_probabilities` / seed drawing — Zipf-skewed seed
  popularity, the access pattern that makes feature caching pay off.

Every generator takes an explicit ``rng``/``seed`` (no module-global
``np.random``): the same seed reproduces the identical workload, which
is what makes :class:`~repro.serve.metrics.ServeReport` deterministic
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = [
    "InferenceRequest",
    "zipf_seed_probabilities",
    "draw_seeds",
    "poisson_workload",
    "bursty_workload",
]


@dataclass(frozen=True)
class InferenceRequest:
    """One online inference request: seed vertices plus a deadline.

    Attributes
    ----------
    request_id:
        Unique id; the server keys delivered outputs by it.
    tenant:
        Which (model, tenant) queue the request belongs to.
    seeds:
        Vertex ids whose model outputs the client wants.
    arrival_s:
        Arrival time on the virtual clock (seconds).
    slo_s:
        Latency budget; the request's absolute deadline is
        ``arrival_s + slo_s``.
    """

    request_id: int
    tenant: str
    seeds: np.ndarray
    arrival_s: float
    slo_s: float

    def __post_init__(self) -> None:
        seeds = np.asarray(self.seeds, dtype=np.int64)
        if seeds.ndim != 1 or seeds.size == 0:
            raise ValueError("seeds must be a non-empty 1-D id array")
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        object.__setattr__(self, "seeds", seeds)

    @property
    def num_seeds(self) -> int:
        return int(self.seeds.size)

    @property
    def deadline_s(self) -> float:
        return self.arrival_s + self.slo_s


def _resolve_rng(
    rng: Optional[np.random.Generator], seed: int
) -> np.random.Generator:
    """One explicit randomness path: a Generator wins over a seed."""
    if rng is not None:
        if not isinstance(rng, np.random.Generator):
            raise TypeError("rng must be a numpy Generator (got legacy state?)")
        return rng
    return np.random.default_rng(seed)


def zipf_seed_probabilities(num_vertices: int, alpha: float) -> np.ndarray:
    """Zipf popularity over vertex ids: ``p(v) ∝ 1 / (v + 1)**alpha``.

    ``alpha = 0`` is uniform.  Rank equals vertex id (documented
    convention — reordering the graph reorders the popularity), so the
    distribution is fully determined by ``(num_vertices, alpha)``.
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    weights = 1.0 / np.power(np.arange(1, num_vertices + 1, dtype=np.float64), alpha)
    return weights / weights.sum()


def draw_seeds(
    num_vertices: int,
    size: int,
    *,
    rng: np.random.Generator,
    zipf_alpha: float = 0.0,
    p: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Draw ``size`` seed vertices (with replacement) from the popularity
    model.  Uniform when ``zipf_alpha == 0``; otherwise Zipf-skewed —
    the hot-vertex pattern real request streams show.  ``p`` supplies a
    precomputed :func:`zipf_seed_probabilities` vector so per-request
    callers don't rebuild the O(|V|) distribution every draw."""
    if size <= 0:
        raise ValueError("size must be positive")
    if zipf_alpha == 0.0:
        return rng.integers(0, num_vertices, size=size, dtype=np.int64)
    if p is None:
        p = zipf_seed_probabilities(num_vertices, zipf_alpha)
    return rng.choice(num_vertices, size=size, replace=True, p=p).astype(np.int64)


def _make_requests(
    arrivals: np.ndarray,
    *,
    num_vertices: int,
    seeds_per_request: int,
    slo_s: float,
    tenant: str,
    zipf_alpha: float,
    rng: np.random.Generator,
    start_id: int,
) -> List[InferenceRequest]:
    # One distribution for the whole stream; per-request draws reuse it.
    p = (
        zipf_seed_probabilities(num_vertices, zipf_alpha)
        if zipf_alpha != 0.0
        else None
    )
    return [
        InferenceRequest(
            request_id=start_id + i,
            tenant=tenant,
            seeds=draw_seeds(
                num_vertices, seeds_per_request,
                rng=rng, zipf_alpha=zipf_alpha, p=p,
            ),
            arrival_s=float(t),
            slo_s=slo_s,
        )
        for i, t in enumerate(arrivals)
    ]


def poisson_workload(
    num_requests: int,
    *,
    qps: float,
    num_vertices: int,
    seeds_per_request: int = 1,
    slo_s: float = 0.05,
    tenant: str = "default",
    zipf_alpha: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    start_id: int = 0,
) -> List[InferenceRequest]:
    """Open-loop Poisson arrivals at ``qps`` requests per second.

    Inter-arrival gaps are exponential with mean ``1/qps``; the first
    request arrives after one gap.  Seed vertices are drawn per request
    from the ``zipf_alpha`` popularity model.  All randomness flows
    through the explicit ``rng`` (or ``seed``).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if qps <= 0:
        raise ValueError("qps must be positive")
    rng = _resolve_rng(rng, seed)
    arrivals = np.cumsum(rng.exponential(1.0 / qps, size=num_requests))
    return _make_requests(
        arrivals,
        num_vertices=num_vertices,
        seeds_per_request=seeds_per_request,
        slo_s=slo_s,
        tenant=tenant,
        zipf_alpha=zipf_alpha,
        rng=rng,
        start_id=start_id,
    )


def bursty_workload(
    num_requests: int,
    *,
    qps: float,
    num_vertices: int,
    burst: int = 8,
    seeds_per_request: int = 1,
    slo_s: float = 0.05,
    tenant: str = "default",
    zipf_alpha: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    start_id: int = 0,
) -> List[InferenceRequest]:
    """Bursty arrivals at the same mean rate as a ``qps`` Poisson stream.

    Requests arrive in bursts of ``burst`` simultaneous requests; burst
    gaps are exponential with mean ``burst/qps``, so the long-run rate
    is still ``qps``.  The pattern stresses the micro-batcher: bursts
    fill batches instantly while the gaps between them leave stragglers
    waiting out ``max_wait``.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if qps <= 0:
        raise ValueError("qps must be positive")
    if burst <= 0:
        raise ValueError("burst must be positive")
    rng = _resolve_rng(rng, seed)
    num_bursts = -(-num_requests // burst)  # ceil
    gaps = rng.exponential(burst / qps, size=num_bursts)
    burst_times = np.cumsum(gaps)
    arrivals = np.repeat(burst_times, burst)[:num_requests]
    return _make_requests(
        arrivals,
        num_vertices=num_vertices,
        seeds_per_request=seeds_per_request,
        slo_s=slo_s,
        tenant=tenant,
        zipf_alpha=zipf_alpha,
        rng=rng,
        start_id=start_id,
    )
