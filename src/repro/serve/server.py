"""The online inference server: batching, caching, scheduling, serving.

:class:`InferenceServer` drives one or more compiled forward plans (one
per tenant) over a shared concrete graph and feature store:

1. each tenant's request stream is coalesced by the micro-batcher
   (:func:`~repro.serve.batcher.coalesce`),
2. each micro-batch expands to its receptive field
   (:func:`~repro.serve.batcher.receptive_field` — the same schedule
   construction as sampled training) and resolves its feature gather
   against the bounded LRU cache (hits shrink the gather bill, misses
   pay it),
3. a :class:`~repro.gpu.cost_model.CostModel`-driven virtual clock
   prices each batch — kernel roofline on the field's stats plus the
   gather cost of the cache misses — and the SLO-aware scheduler
   (:func:`~repro.serve.scheduler.place_batches`) places batches from
   all tenant queues onto the GPU pool (EDF or FIFO),
4. batches execute bit-identically through the ordinary
   :class:`~repro.exec.engine.Engine` on their induced subgraphs
   (optionally through per-field arena plans), and each request's seed
   rows are delivered.

A :class:`~repro.gpu.cluster.Cluster` serves as a homogeneous pool —
whole batches are placed on single GPUs, so the interconnect never
enters the serving clock (no partitioning, no halo exchange).
Compiled forwards are expected to come out of the session-level
:class:`~repro.session.PlanCache` (LRU-bounded), which acts as the
plan-level compiled-forward cache serving hammers.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.dyn.delta import DynamicGraph
from repro.dyn.featurestore import FeatureStore

if TYPE_CHECKING:  # runtime import would cycle: dyn.workload uses serve.request
    from repro.dyn.workload import UpdateEvent
from repro.exec.analytic import feature_gather_row_bytes
from repro.exec.engine import Engine
from repro.exec.memory import plan_memory
from repro.frameworks.strategy import CompiledForward
from repro.gpu.cluster import Cluster
from repro.gpu.cost_model import CostModel
from repro.gpu.spec import GPUSpec, get_gpu
from repro.graph.csr import Graph
from repro.graph.sampling import MiniBatch
from repro.serve.batcher import BatchPolicy, MicroBatch, coalesce, receptive_field
from repro.serve.cache import FeatureCache
from repro.serve.metrics import BatchTrace, RequestOutcome, ServeReport
from repro.serve.request import InferenceRequest
from repro.serve.scheduler import (
    PendingBatch,
    place_batches,
    place_batches_overlapped,
)
from repro.exec.profiler import BatchCost

__all__ = ["InferenceServer"]


class _TenantRuntime:
    """Per-tenant compiled state: plan, params, gather-row pricing."""

    def __init__(
        self,
        name: str,
        compiled: CompiledForward,
        *,
        hops: Optional[int],
        params: Optional[Dict[str, np.ndarray]],
        param_seed: int,
    ):
        from repro.train.minibatch import receptive_hops  # lazy: avoids cycle

        if not isinstance(compiled, CompiledForward):
            raise TypeError(
                f"tenant {name!r}: serving takes a CompiledForward "
                "(compile with training=False); got "
                f"{type(compiled).__name__}"
            )
        if len(compiled.forward.outputs) != 1:
            raise ValueError(
                f"tenant {name!r}: serving expects a single-output model"
            )
        self.name = name
        self.compiled = compiled
        self.hops = hops if hops is not None else receptive_hops(compiled.forward)
        if self.hops < 0:
            raise ValueError("hops must be non-negative")
        self.params = dict(
            params
            if params is not None
            else compiled.model.init_params(param_seed)
        )
        self.output_name = compiled.forward.outputs[0]
        self.row_bytes = feature_gather_row_bytes(compiled.plan)
        self.pinned = list(compiled.forward.inputs) + list(
            compiled.forward.params
        )


class InferenceServer:
    """Serves online inference requests over one graph + feature store.

    Parameters
    ----------
    graph / features:
        The shared concrete topology and host feature matrix requests
        are answered from (``features`` has one row per vertex).
    compiled:
        A :class:`~repro.frameworks.strategy.CompiledForward`, or a
        mapping ``tenant name -> CompiledForward`` for multi-tenant
        serving.  A bare plan serves the ``"default"`` tenant.
    gpu:
        Device name / :class:`~repro.gpu.spec.GPUSpec` (one GPU) or a
        :class:`~repro.gpu.cluster.Cluster` (a pool of ``num_gpus``
        identical devices).
    batch_policy / scheduler_policy:
        Micro-batching knobs and the queue policy (``"edf"``/``"fifo"``).
    cache_rows:
        LRU feature-cache capacity in rows (0 disables caching).
    hops:
        Receptive-field radius override for every tenant (default:
        each compiled forward's message-passing depth).
    memory_plan:
        Plan a fresh arena per receptive field and execute through it
        (requires the accounting precision, float32); the planned
        pinned+arena footprint then drives the device-fit check.
    execute:
        ``False`` skips concrete engine execution (no delivered
        outputs).  Every metric is analytic, so reports are identical
        either way — the switch exists for costing-only experiments.
    overlap:
        ``None`` (serial virtual clock), ``"events"`` (feature gathers
        placed on a dedicated IO channel overlapping the compute
        channel — the report carries both the overlapped and the
        serialized makespan), or ``"threads"`` (same placement, with
        concrete batch execution additionally fanned out over a thread
        pool).  Delivered outputs are bit-identical across all three
        modes: the clock prices batches, it never touches their
        numerics.
    params / param_seed:
        Per-tenant parameter arrays (mapping ``tenant -> params``), or
        a seed for each model's initialiser.
    """

    def __init__(
        self,
        graph: Graph,
        features: np.ndarray,
        compiled: Union[CompiledForward, Mapping[str, CompiledForward]],
        *,
        gpu: Union[str, GPUSpec, Cluster] = "RTX3090",
        batch_policy: Optional[BatchPolicy] = None,
        scheduler_policy: str = "edf",
        cache_rows: int = 0,
        hops: Optional[int] = None,
        memory_plan: bool = False,
        execute: bool = True,
        params: Optional[Mapping[str, Dict[str, np.ndarray]]] = None,
        param_seed: int = 0,
        precision: str = "float32",
        overlap: Optional[str] = None,
    ):
        if overlap not in (None, "events", "threads"):
            raise ValueError(
                f"unknown overlap mode {overlap!r}; use 'events', "
                "'threads', or None"
            )
        if features.shape[0] != graph.num_vertices:
            raise ValueError(
                f"features have {features.shape[0]} rows, graph has "
                f"{graph.num_vertices} vertices"
            )
        if memory_plan and np.dtype(precision) != np.dtype("float32"):
            raise ValueError(
                "memory_plan=True executes through spec-sized arena "
                'slabs and needs the accounting precision: pass '
                'precision="float32"'
            )
        self.graph = graph
        self.features = features
        if isinstance(compiled, Mapping):
            tenant_plans = dict(compiled)
        else:
            tenant_plans = {"default": compiled}
        if not tenant_plans:
            raise ValueError("server needs at least one tenant plan")
        self.tenants: Dict[str, _TenantRuntime] = {
            name: _TenantRuntime(
                name,
                plan,
                hops=hops,
                params=None if params is None else params.get(name),
                param_seed=param_seed,
            )
            for name, plan in tenant_plans.items()
        }
        resolved = get_gpu(gpu) if isinstance(gpu, str) else gpu
        if isinstance(resolved, Cluster):
            self.cluster: Optional[Cluster] = resolved
            self.spec = resolved.gpu
            self.num_gpus = resolved.num_gpus
        else:
            self.cluster = None
            self.spec = resolved
            self.num_gpus = 1
        self.cost = CostModel(self.spec)
        self.batch_policy = (
            batch_policy if batch_policy is not None else BatchPolicy()
        )
        self.scheduler_policy = scheduler_policy
        self.cache_rows = int(cache_rows)
        self.memory_plan = memory_plan
        self.execute = execute
        self.precision = precision
        self.overlap = overlap
        #: The feature cache of the most recent :meth:`serve` call.
        self.cache: Optional[FeatureCache] = None
        #: Dynamic state of the most recent :meth:`serve` call (``None``
        #: on static runs).
        self.dynamic_graph: Optional[DynamicGraph] = None
        self.feature_store: Optional[FeatureStore] = None

    # ------------------------------------------------------------------
    def _batch_sequence(
        self,
        requests: Sequence[InferenceRequest],
        *,
        num_vertices: Optional[int] = None,
    ) -> List[MicroBatch]:
        """Coalesce every tenant queue, merged in dispatch order.

        ``num_vertices`` widens seed validation to the post-update
        vertex space on dynamic runs (a seed referencing a vertex whose
        insertion arrives *after* the request's batch dispatch still
        fails, at snapshot-expansion time).
        """
        if num_vertices is None:
            num_vertices = self.graph.num_vertices
        by_tenant: Dict[str, List[InferenceRequest]] = {}
        seen_ids = set()
        for r in requests:
            if r.tenant not in self.tenants:
                raise KeyError(
                    f"request {r.request_id} targets unknown tenant "
                    f"{r.tenant!r}; server tenants: {sorted(self.tenants)}"
                )
            if r.request_id in seen_ids:
                raise ValueError(f"duplicate request_id {r.request_id}")
            seen_ids.add(r.request_id)
            if r.seeds.min() < 0 or r.seeds.max() >= num_vertices:
                raise ValueError(
                    f"request {r.request_id}: seed ids out of range"
                )
            by_tenant.setdefault(r.tenant, []).append(r)
        batches: List[MicroBatch] = []
        for tenant in sorted(by_tenant):
            batches.extend(coalesce(by_tenant[tenant], self.batch_policy))
        # Global dispatch order: the cache sees gathers in the order
        # batches leave the batcher, across all tenant queues.
        batches.sort(key=lambda b: (b.dispatch_s, b.tenant, b.requests[0].request_id))
        return batches

    def _execute_batch(
        self,
        runtime: _TenantRuntime,
        mb: MiniBatch,
        mplan,
        feature_rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run the tenant's forward plan on the induced subgraph.

        Bit-identical to a direct :class:`Engine` run on the same
        subgraph with the same sliced feature rows — the serving path
        adds nothing between the field construction and the plan walk.
        ``mplan`` is the batch's arena plan from the costing pass (None
        without :attr:`memory_plan`), reused rather than replanned.
        ``feature_rows`` overrides the static matrix slice on dynamic
        runs: the rows come from the batch's dispatch-time
        :class:`FeatureStore` snapshot.
        """
        compiled = runtime.compiled
        engine = Engine(
            mb.subgraph,
            precision=self.precision,
            memory_plan=None if mplan is None else [mplan],
            backend=compiled.strategy.backend,
        )
        if feature_rows is None:
            feature_rows = self.features[mb.vertices]
        arrays = compiled.model.make_inputs(mb.subgraph, feature_rows)
        arrays.update(runtime.params)
        env = engine.bind(compiled.forward, arrays)
        out = engine.run_plan(compiled.plan, env, unwrap=True)
        return out[runtime.output_name]

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Sequence[InferenceRequest],
        updates: Optional[Sequence["UpdateEvent"]] = None,
        *,
        compact_every: Optional[int] = None,
    ) -> ServeReport:
        """Serve a request stream on the virtual clock; returns the report.

        ``updates`` turns the run dynamic: the update stream is replayed
        against a :class:`DynamicGraph` overlay of the server's graph
        and a versioned :class:`FeatureStore` copy of its features (the
        originals are never mutated).  Each batch observes the
        graph/feature state current at its *dispatch* time — every
        update with ``arrival_s <= dispatch_s`` applied, later ones
        invisible, regardless of how long the batch then queues for a
        GPU (the arrival-time-snapshot contract: the batcher is
        open-loop, so dispatch times depend only on arrivals, never on
        the scheduler policy).  Feature puts invalidate the serve
        cache's touched rows; the re-gather bill lands in the report's
        invalidated-bytes column.  ``compact_every`` folds the overlay
        into a fresh CSR after every that-many applied deltas —
        compaction changes only the mutation-IO ledger, never an
        answer.  Updates arriving after the last dispatch are still
        applied, so the report's final versions and mutation ledger
        cover the whole stream.
        """
        cache = FeatureCache(self.cache_rows)
        self.cache = cache
        if compact_every is not None and compact_every <= 0:
            raise ValueError("compact_every must be positive")
        dynamic = bool(updates)
        pending_updates: List["UpdateEvent"] = []
        dyn: Optional[DynamicGraph] = None
        store: Optional[FeatureStore] = None
        total_new_vertices = 0
        if dynamic:
            pending_updates = sorted(
                updates, key=lambda u: (u.arrival_s, u.update_id)
            )
            ids = {u.update_id for u in pending_updates}
            if len(ids) != len(pending_updates):
                raise ValueError("duplicate update_id in update stream")
            dyn = DynamicGraph(self.graph)
            store = FeatureStore(self.features, cache=cache, layer=0)
            total_new_vertices = sum(
                u.num_new_vertices for u in pending_updates
            )
        self.dynamic_graph = dyn
        self.feature_store = store
        batches = self._batch_sequence(
            requests,
            num_vertices=self.graph.num_vertices + total_new_vertices,
        )

        num_graph_updates = num_feature_updates = 0
        deltas_since_compact = 0
        next_update = 0

        def apply_updates(horizon_s: Optional[float]) -> None:
            """Apply every update with ``arrival_s <= horizon_s``
            (all remaining when ``None``)."""
            nonlocal next_update, num_graph_updates
            nonlocal num_feature_updates, deltas_since_compact
            while next_update < len(pending_updates):
                event = pending_updates[next_update]
                if horizon_s is not None and event.arrival_s > horizon_s:
                    break
                if event.num_feature_rows:
                    store.put(event.feature_vertices, event.feature_rows)
                    num_feature_updates += 1
                if event.delta is not None:
                    dyn.apply(event.delta)
                    if event.num_new_vertices:
                        store.add_vertices(event.new_vertex_rows)
                    num_graph_updates += 1
                    deltas_since_compact += 1
                    if (
                        compact_every is not None
                        and deltas_since_compact >= compact_every
                    ):
                        dyn.compact()
                        deltas_since_compact = 0
                next_update += 1

        fields: List[MiniBatch] = []
        costs: List[BatchCost] = []
        splits = []
        mplans: List[Optional[object]] = []
        pending: List[PendingBatch] = []
        versions: List[Tuple[int, int]] = []
        batch_feats: List[Optional[np.ndarray]] = []
        compute_seconds: List[float] = []
        gather_seconds: List[float] = []
        for batch in batches:
            runtime = self.tenants[batch.tenant]
            if dynamic:
                apply_updates(batch.dispatch_s)
                mb = dyn.receptive_field(batch.seeds, runtime.hops)
                versions.append((dyn.version, store.version))
                # Snapshot the field's feature rows now: later batches'
                # puts must not leak into this batch's execution.
                batch_feats.append(
                    store.rows(mb.vertices) if self.execute else None
                )
            else:
                mb = receptive_field(self.graph, batch.seeds, runtime.hops)
                versions.append((0, 0))
                batch_feats.append(None)
            field_stats = mb.subgraph.stats()
            compute = runtime.compiled.counters(field_stats)
            smp = None
            if self.memory_plan:
                smp = plan_memory(
                    runtime.compiled.plan, field_stats, pinned=runtime.pinned
                )
                compute.forward.planned_peak_bytes = smp.planned_peak_bytes
            mplans.append(smp)
            # The batch must fit one pool device (arena-aware when a
            # memory plan backs the run).
            self.cost.check_memory(compute)
            split = cache.gather(0, mb.vertices, runtime.row_bytes)
            compute_s = self.cost.latency_seconds(compute, field_stats)
            gather_s = self.cost.gather_seconds(split.paid_bytes)
            service = compute_s + gather_s
            compute_seconds.append(compute_s)
            gather_seconds.append(gather_s)
            fields.append(mb)
            splits.append(split)
            costs.append(
                BatchCost(
                    seeds=mb.num_seeds,
                    field=mb.field_size,
                    edges=mb.subgraph.num_edges,
                    gather_bytes=split.paid_bytes,
                    compute=compute,
                    stats=field_stats,
                )
            )
            pending.append(
                PendingBatch(
                    dispatch_s=batch.dispatch_s,
                    service_s=service,
                    deadline_s=batch.deadline_s,
                )
            )
        if dynamic:
            apply_updates(None)

        serial_placements = place_batches(
            pending, self.num_gpus, policy=self.scheduler_policy
        )
        serialized_makespan_s = 0.0
        if self.overlap is None:
            placements = serial_placements
        else:
            # The serial placement is kept as the efficiency
            # denominator: same batches, one channel, gather + compute
            # fused into a single GPU hold.
            placements = place_batches_overlapped(
                pending,
                self.num_gpus,
                gather_s=gather_seconds,
                compute_s=compute_seconds,
                policy=self.scheduler_policy,
            )
            serialized_makespan_s = max(
                (p.finish_s for p in serial_placements), default=0.0
            )

        logits_by_batch: List[Optional[np.ndarray]] = [None] * len(batches)
        if self.execute and self.overlap == "threads" and batches:
            # Real parallelism over the concrete executions: per-batch
            # engines share only read-only state (features were
            # snapshotted per batch on dynamic runs), and results are
            # collected in submission order, so delivered outputs stay
            # bit-identical to the serial walk.
            from concurrent.futures import ThreadPoolExecutor
            import os

            workers = max(1, min(16, os.cpu_count() or 1))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        self._execute_batch,
                        self.tenants[batch.tenant],
                        mb,
                        mplan,
                        feats,
                    )
                    for batch, mb, mplan, feats in zip(
                        batches, fields, mplans, batch_feats
                    )
                ]
                logits_by_batch = [f.result() for f in futures]

        gpu_busy = [0.0] * self.num_gpus
        traces: List[BatchTrace] = []
        outcomes: List[RequestOutcome] = []
        outputs: Dict[int, np.ndarray] = {}
        for i, (batch, mb, cost, split, mplan, slot, (gv, fv), feats) in (
            enumerate(zip(
                batches, fields, costs, splits, mplans, placements, versions,
                batch_feats,
            ))
        ):
            # On the overlapped clock the gather ran on the io channel;
            # the GPU itself was held only for the compute half.
            gpu_busy[slot.gpu] += (
                slot.service_s if self.overlap is None
                else compute_seconds[i]
            )
            traces.append(
                BatchTrace(
                    tenant=batch.tenant,
                    request_ids=tuple(r.request_id for r in batch.requests),
                    dispatch_s=batch.dispatch_s,
                    start_s=slot.start_s,
                    finish_s=slot.finish_s,
                    gpu=slot.gpu,
                    cost=cost,
                    hit_bytes=split.hit_bytes,
                    miss_bytes=split.miss_bytes,
                    invalidated_bytes=split.invalidated_bytes,
                    graph_version=gv,
                    feature_version=fv,
                )
            )
            if self.overlap == "threads":
                logits = logits_by_batch[i]
            else:
                logits = (
                    self._execute_batch(
                        self.tenants[batch.tenant], mb, mplan, feats
                    )
                    if self.execute
                    else None
                )
            for r in batch.requests:
                outcomes.append(
                    RequestOutcome(
                        request_id=r.request_id,
                        tenant=r.tenant,
                        num_seeds=r.num_seeds,
                        arrival_s=r.arrival_s,
                        start_s=slot.start_s,
                        finish_s=slot.finish_s,
                        deadline_s=r.deadline_s,
                        gpu=slot.gpu,
                        snapshot_s=batch.dispatch_s if dynamic else None,
                    )
                )
                if logits is not None:
                    # mb.vertices is sorted, so the request's seed rows
                    # come from bisection into the field.
                    rows = np.searchsorted(mb.vertices, r.seeds)
                    outputs[r.request_id] = logits[rows]
        outcomes.sort(key=lambda o: o.request_id)

        return ServeReport(
            outcomes=outcomes,
            batches=traces,
            num_gpus=self.num_gpus,
            gpu_busy_s=gpu_busy,
            batch_policy_max=self.batch_policy.max_batch,
            batch_policy_wait_s=self.batch_policy.max_wait_s,
            scheduler_policy=self.scheduler_policy,
            cache_rows=self.cache_rows,
            num_vertices=(
                dyn.num_vertices if dynamic else self.graph.num_vertices
            ),
            outputs=outputs,
            overlap=self.overlap,
            serialized_makespan_s=serialized_makespan_s,
            graph_version=dyn.version if dynamic else 0,
            feature_version=store.version if dynamic else 0,
            num_graph_updates=num_graph_updates,
            num_feature_updates=num_feature_updates,
            compactions=dyn.compactions if dynamic else 0,
            delta_apply_bytes=dyn.apply_bytes if dynamic else 0,
            compact_bytes=dyn.compact_bytes if dynamic else 0,
            feature_put_bytes=(
                store.put_bytes + store.grow_bytes if dynamic else 0
            ),
        )
