"""Bounded LRU feature/embedding caching with exact byte accounting.

Per-request receptive-field gathers dominate serving IO, and request
streams are skewed (hot vertices recur), so the server fronts host
feature storage with a bounded LRU cache keyed by ``(layer, vertex)``
— layer 0 holds input feature rows; positive layers are reserved for
cached layer embeddings.

The cache is an *accounting* device: it never changes what the engine
computes (the engine always binds the true feature rows), only what the
gather costs.  Cache hits shrink the gather bytes the batch pays, and
misses pay them — with the exact reconciliation invariant the serving
tests pin::

    hit_bytes + miss_bytes == uncached gather bytes (field rows × row bytes)

so analytic IO counters with caching enabled remain byte-exact against
the uncached :func:`~repro.exec.analytic.analyze_minibatch` convention.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["GatherSplit", "FeatureCache"]


@dataclass(frozen=True)
class GatherSplit:
    """One batch gather resolved against the cache."""

    hit_rows: int
    miss_rows: int
    hit_bytes: int
    miss_bytes: int

    @property
    def rows(self) -> int:
        return self.hit_rows + self.miss_rows

    @property
    def bytes(self) -> int:
        """The uncached gather bill (hits + misses): the reconciliation
        quantity against the cache-free accounting."""
        return self.hit_bytes + self.miss_bytes


class FeatureCache:
    """Bounded LRU over ``(layer, vertex)`` rows.

    ``capacity_rows`` bounds the number of cached rows; 0 disables
    caching (every lookup misses, the uncached-accounting limit).
    Lookups are resolved row by row in vertex order, so a batch's split
    is deterministic; missed rows are inserted (and the least recently
    used evicted) immediately, modelling a fetch-through cache.
    """

    def __init__(self, capacity_rows: int = 0):
        if capacity_rows < 0:
            raise ValueError("capacity_rows must be non-negative")
        self.capacity_rows = int(capacity_rows)
        self._rows: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._rows

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Row-level hit share over every lookup so far."""
        total = self.lookups
        return self.hits / total if total > 0 else 0.0

    def clear(self) -> None:
        self._rows.clear()
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def gather(
        self, layer: int, vertices: np.ndarray, row_bytes: int
    ) -> GatherSplit:
        """Resolve one receptive-field gather against the cache.

        ``vertices`` are the (deduplicated) field rows the batch needs;
        ``row_bytes`` is the per-row gather bill
        (:func:`~repro.exec.analytic.feature_gather_row_bytes`).
        Returns the hit/miss split; misses are fetched through (inserted
        as most-recently-used, evicting LRU rows beyond capacity).
        """
        if row_bytes < 0:
            raise ValueError("row_bytes must be non-negative")
        hit_rows = miss_rows = 0
        if self.capacity_rows == 0:
            miss_rows = int(np.asarray(vertices).size)
        else:
            for v in np.asarray(vertices, dtype=np.int64):
                key = (int(layer), int(v))
                if key in self._rows:
                    self._rows.move_to_end(key)
                    hit_rows += 1
                else:
                    miss_rows += 1
                    self._rows[key] = None
                    if len(self._rows) > self.capacity_rows:
                        self._rows.popitem(last=False)
                        self.evictions += 1
        split = GatherSplit(
            hit_rows=hit_rows,
            miss_rows=miss_rows,
            hit_bytes=hit_rows * row_bytes,
            miss_bytes=miss_rows * row_bytes,
        )
        self.hits += split.hit_rows
        self.misses += split.miss_rows
        self.hit_bytes += split.hit_bytes
        self.miss_bytes += split.miss_bytes
        return split
