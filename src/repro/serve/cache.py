"""Bounded LRU feature/embedding caching with exact byte accounting.

Per-request receptive-field gathers dominate serving IO, and request
streams are skewed (hot vertices recur), so the server fronts host
feature storage with a bounded LRU cache keyed by ``(layer, vertex)``
— layer 0 holds input feature rows; positive layers are reserved for
cached layer embeddings.

The cache is an *accounting* device: it never changes what the engine
computes (the engine always binds the true feature rows), only what the
gather costs.  Cache hits shrink the gather bytes the batch pays, and
misses pay them — with the exact reconciliation invariant the serving
tests pin::

    hit_bytes + miss_bytes + invalidated_bytes
        == uncached gather bytes (field rows × row bytes)

so analytic IO counters with caching enabled remain byte-exact against
the uncached :func:`~repro.exec.analytic.analyze_minibatch` convention.

Two behaviours exist for the dynamic-serving path:

- **Invalidation** (:meth:`FeatureCache.invalidate`): a versioned
  feature write evicts the touched resident rows; the *next* gather of
  such a row is attributed to the ``invalidated`` column instead of a
  cold miss, so the staleness-induced re-gather bill is separable.
- **Pin-during-batch** (:meth:`FeatureCache.gather`): rows already
  gathered for the current batch (hits and fetched-through misses) are
  pinned for the remainder of that gather — a miss burst larger than
  the remaining capacity evicts other batches' rows, never rows the
  in-flight batch is about to bind.  When every resident row belongs to
  the current batch, the insert is bypassed instead
  (``pinned_bypasses``); the row still pays its miss bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Set, Tuple

import numpy as np

__all__ = ["GatherSplit", "FeatureCache"]


@dataclass(frozen=True)
class GatherSplit:
    """One batch gather resolved against the cache.

    ``invalidated_rows`` are misses on rows a versioned write evicted —
    the re-gather cost of feature drift, reported separately from cold
    misses.  ``miss_rows`` counts cold misses only.
    """

    hit_rows: int
    miss_rows: int
    hit_bytes: int
    miss_bytes: int
    invalidated_rows: int = 0
    invalidated_bytes: int = 0

    @property
    def rows(self) -> int:
        return self.hit_rows + self.miss_rows + self.invalidated_rows

    @property
    def bytes(self) -> int:
        """The uncached gather bill (hits + misses + invalidated): the
        reconciliation quantity against the cache-free accounting."""
        return self.hit_bytes + self.miss_bytes + self.invalidated_bytes

    @property
    def paid_bytes(self) -> int:
        """Bytes actually fetched from host storage (cold misses plus
        invalidated re-gathers) — what the batch's gather stall costs."""
        return self.miss_bytes + self.invalidated_bytes


class FeatureCache:
    """Bounded LRU over ``(layer, vertex)`` rows.

    ``capacity_rows`` bounds the number of cached rows; 0 disables
    caching (every lookup misses, the uncached-accounting limit).
    Alternatively pass ``capacity_bytes`` with the per-row storage cost
    (``row_bytes``) and the row budget is derived as
    ``capacity_bytes // row_bytes`` — the device-memory framing, under
    which a fixed byte budget holds twice as many fp16 rows as fp32
    ones.  Lookups are resolved row by row in vertex order, so a
    batch's split is deterministic; missed rows are inserted (and the
    least recently used *unpinned* row evicted) immediately, modelling
    a fetch-through cache.
    """

    def __init__(
        self,
        capacity_rows: int = 0,
        *,
        capacity_bytes: Optional[int] = None,
        row_bytes: Optional[int] = None,
    ):
        if capacity_bytes is not None:
            if capacity_rows:
                raise ValueError(
                    "pass capacity_rows or capacity_bytes, not both"
                )
            if capacity_bytes < 0:
                raise ValueError("capacity_bytes must be non-negative")
            if row_bytes is None or row_bytes <= 0:
                raise ValueError(
                    "capacity_bytes requires a positive row_bytes "
                    "(the per-row storage cost to divide the budget by)"
                )
            capacity_rows = int(capacity_bytes) // int(row_bytes)
        elif row_bytes is not None:
            raise ValueError("row_bytes is only meaningful with capacity_bytes")
        if capacity_rows < 0:
            raise ValueError("capacity_rows must be non-negative")
        self.capacity_rows = int(capacity_rows)
        self._rows: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        # Keys a versioned write removed while resident; the next miss
        # on one is an invalidation re-gather, not a cold miss.
        self._stale: Set[Tuple[int, int]] = set()
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.invalidated = 0
        self.invalidated_bytes = 0
        self.evictions = 0
        self.invalidations = 0
        self.pinned_bypasses = 0

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._rows

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.invalidated

    @property
    def hit_rate(self) -> float:
        """Row-level hit share over every lookup so far."""
        total = self.lookups
        return self.hits / total if total > 0 else 0.0

    def clear(self) -> None:
        self._rows.clear()
        self._stale.clear()
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.invalidated = 0
        self.invalidated_bytes = 0
        self.evictions = 0
        self.invalidations = 0
        self.pinned_bypasses = 0

    # ------------------------------------------------------------------
    def invalidate(self, layer: int, vertices: np.ndarray) -> int:
        """Drop the resident rows a versioned write touched.

        Returns how many rows were actually resident (and are now
        marked stale).  Rows not in the cache need nothing: their next
        gather was going to miss anyway, so attributing it to
        invalidation would double-count drift against cold traffic.
        """
        dropped = 0
        for v in np.asarray(vertices, dtype=np.int64):
            key = (int(layer), int(v))
            if key in self._rows:
                del self._rows[key]
                self._stale.add(key)
                dropped += 1
        self.invalidations += dropped
        return dropped

    # ------------------------------------------------------------------
    def gather(
        self, layer: int, vertices: np.ndarray, row_bytes: int
    ) -> GatherSplit:
        """Resolve one receptive-field gather against the cache.

        ``vertices`` are the (deduplicated) field rows the batch needs;
        ``row_bytes`` is the per-row gather bill
        (:func:`~repro.exec.analytic.feature_gather_row_bytes`).
        Returns the hit/miss/invalidated split; misses are fetched
        through (inserted as most-recently-used, evicting LRU rows
        beyond capacity — skipping rows this same call already
        gathered, which the in-flight batch is about to bind).
        """
        if row_bytes < 0:
            raise ValueError("row_bytes must be non-negative")
        hit_rows = miss_rows = invalidated_rows = 0
        if self.capacity_rows == 0:
            # Nothing is ever resident, so writes can never invalidate:
            # every lookup is a plain cold miss.
            miss_rows = int(np.asarray(vertices).size)
        else:
            batch_keys: Set[Tuple[int, int]] = set()
            for v in np.asarray(vertices, dtype=np.int64):
                key = (int(layer), int(v))
                if key in self._rows:
                    self._rows.move_to_end(key)
                    hit_rows += 1
                else:
                    if key in self._stale:
                        self._stale.discard(key)
                        invalidated_rows += 1
                    else:
                        miss_rows += 1
                    self._rows[key] = None
                    if len(self._rows) > self.capacity_rows:
                        evicted = False
                        for candidate in self._rows:
                            if candidate not in batch_keys and candidate != key:
                                del self._rows[candidate]
                                self.evictions += 1
                                evicted = True
                                break
                        if not evicted:
                            # Every resident row is pinned to this
                            # batch: don't cache the newcomer at all.
                            del self._rows[key]
                            self.pinned_bypasses += 1
                            continue
                batch_keys.add(key)
        split = GatherSplit(
            hit_rows=hit_rows,
            miss_rows=miss_rows,
            hit_bytes=hit_rows * row_bytes,
            miss_bytes=miss_rows * row_bytes,
            invalidated_rows=invalidated_rows,
            invalidated_bytes=invalidated_rows * row_bytes,
        )
        self.hits += split.hit_rows
        self.misses += split.miss_rows
        self.hit_bytes += split.hit_bytes
        self.miss_bytes += split.miss_bytes
        self.invalidated += split.invalidated_rows
        self.invalidated_bytes += split.invalidated_bytes
        return split
