"""Tensor domains and shape/byte accounting.

A tensor in this library is characterised by its *domain* (which graph
dimension its leading axis runs over) and its *feature shape* (all
trailing axes).  The leading extent is implied by the graph:

=========  ==========================  =============================
Domain     Leading extent              Examples
=========  ==========================  =============================
VERTEX     ``|V|``                     vertex features, degrees
EDGE       ``|E|``                     messages, attention scores
PARAM      1 (feat_shape is full)      weights, biases
DENSE      1 (feat_shape is full)      loss scalars, global stats
=========  ==========================  =============================

Keeping the leading extent symbolic is what lets the analytic pipeline
account for tensors on graphs that are never materialised (reddit-full).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Tuple

import numpy as np

__all__ = ["Domain", "TensorSpec", "LOGICAL_DTYPES"]

# Storage-only dtypes NumPy cannot represent natively.  Each entry maps a
# *logical* dtype name to ``(itemsize, concrete_dtype)``: byte accounting
# uses the logical itemsize while the execution engine materialises the
# value in the concrete dtype (simulating the storage format numerically).
#
# ``bfloat16``  — 2-byte truncated float32 (round-to-nearest-even on the
#                 top 16 bits); computed as float32, rounded at node
#                 boundaries.
# ``qint8``     — symmetric per-row int8 quantisation with one float32
#                 scale per row (``max|row| / 127``); rows therefore cost
#                 ``feat_elements * 1 + 4`` bytes.  Dequantised to float32
#                 before any compute, so derived values never carry it.
LOGICAL_DTYPES: dict = {
    "bfloat16": (2, "float32"),
    "qint8": (1, "float32"),
}

# Per-row overhead bytes beyond ``feat_elements * itemsize``.
_SCALE_BYTES: dict = {"qint8": 4}


class Domain(Enum):
    """Which graph dimension a tensor's leading axis runs over."""

    VERTEX = "vertex"
    EDGE = "edge"
    PARAM = "param"
    DENSE = "dense"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Domain.{self.name}"


@dataclass(frozen=True)
class TensorSpec:
    """Static description of a tensor: domain, feature shape, dtype.

    Parameters
    ----------
    domain:
        Graph dimension of the leading axis.
    feat_shape:
        Trailing axes.  ``()`` denotes a per-row scalar (e.g. an
        attention logit per edge).
    dtype:
        NumPy dtype string.  Defaults to ``float32`` — matching the GPU
        precision the paper's byte counts assume.  The concrete engine
        may compute in float64 for gradient checking; *accounting* always
        uses this declared dtype.
    """

    domain: Domain
    feat_shape: Tuple[int, ...] = ()
    dtype: str = "float32"

    def __post_init__(self) -> None:
        fs = tuple(int(d) for d in self.feat_shape)
        if any(d <= 0 for d in fs):
            raise ValueError(f"feature dims must be positive, got {fs}")
        object.__setattr__(self, "feat_shape", fs)
        # Validate the dtype eagerly so errors surface at build time.
        if self.dtype not in LOGICAL_DTYPES:
            try:
                np.dtype(self.dtype)
            except TypeError:
                raise ValueError(
                    f"unknown dtype {self.dtype!r}: not a NumPy dtype and "
                    f"not one of the logical dtypes {sorted(LOGICAL_DTYPES)}"
                ) from None

    # ------------------------------------------------------------------
    @property
    def feat_elements(self) -> int:
        """Number of elements per leading row."""
        return math.prod(self.feat_shape) if self.feat_shape else 1

    @property
    def itemsize(self) -> int:
        """Bytes per element in *storage* (logical dtypes included)."""
        if self.dtype in LOGICAL_DTYPES:
            return LOGICAL_DTYPES[self.dtype][0]
        return np.dtype(self.dtype).itemsize

    @property
    def concrete_dtype(self) -> np.dtype:
        """NumPy dtype the engine materialises this value in.

        Logical dtypes (``bfloat16``, ``qint8``) have no NumPy
        representation; they are simulated in their concrete dtype while
        *accounting* uses the logical :attr:`itemsize`.
        """
        if self.dtype in LOGICAL_DTYPES:
            return np.dtype(LOGICAL_DTYPES[self.dtype][1])
        return np.dtype(self.dtype)

    @property
    def scale_bytes(self) -> int:
        """Per-row metadata bytes (quantisation scales); 0 for plain dtypes."""
        return _SCALE_BYTES.get(self.dtype, 0)

    @property
    def row_bytes(self) -> int:
        """Storage bytes per leading row, including per-row scales."""
        return self.feat_elements * self.itemsize + self.scale_bytes

    @property
    def is_quantized(self) -> bool:
        return self.dtype == "qint8"

    def rows(self, num_vertices: int, num_edges: int) -> int:
        """Leading extent given the graph size."""
        if self.domain is Domain.VERTEX:
            return num_vertices
        if self.domain is Domain.EDGE:
            return num_edges
        return 1

    def elements(self, num_vertices: int, num_edges: int) -> int:
        return self.rows(num_vertices, num_edges) * self.feat_elements

    def nbytes(self, num_vertices: int, num_edges: int) -> int:
        return self.rows(num_vertices, num_edges) * self.row_bytes

    # ------------------------------------------------------------------
    def with_feat(self, feat_shape: Tuple[int, ...]) -> "TensorSpec":
        """Same domain/dtype with a different feature shape."""
        return TensorSpec(self.domain, tuple(feat_shape), self.dtype)

    def with_domain(self, domain: Domain) -> "TensorSpec":
        return TensorSpec(domain, self.feat_shape, self.dtype)

    def with_dtype(self, dtype: str) -> "TensorSpec":
        return TensorSpec(self.domain, self.feat_shape, dtype)

    def __str__(self) -> str:
        fs = "x".join(str(d) for d in self.feat_shape) or "scalar"
        return f"{self.domain.value}[{fs}]:{self.dtype}"


def broadcast_feat_shapes(*shapes: Tuple[int, ...]) -> Tuple[int, ...]:
    """Broadcast feature shapes under the library's right-pad rule.

    Lower-rank shapes are padded with singleton axes **on the right**
    before standard NumPy broadcasting.  Right-padding (instead of
    NumPy's left-padding) is what makes per-row scalars broadcast against
    per-row vectors: an attention logit ``()`` multiplies a message
    ``(f,)`` by expanding to ``(1,)``, and a MoNet kernel weight ``(K,)``
    multiplies projected features ``(K, f)`` by expanding to ``(K, 1)``.
    """
    rank = max((len(s) for s in shapes), default=0)
    padded = [s + (1,) * (rank - len(s)) for s in shapes]
    try:
        return tuple(int(d) for d in np.broadcast_shapes(*padded))
    except ValueError as exc:  # pragma: no cover - message passthrough
        raise ValueError(f"feature shapes not broadcastable: {shapes}") from exc
