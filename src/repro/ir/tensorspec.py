"""Tensor domains and shape/byte accounting.

A tensor in this library is characterised by its *domain* (which graph
dimension its leading axis runs over) and its *feature shape* (all
trailing axes).  The leading extent is implied by the graph:

=========  ==========================  =============================
Domain     Leading extent              Examples
=========  ==========================  =============================
VERTEX     ``|V|``                     vertex features, degrees
EDGE       ``|E|``                     messages, attention scores
PARAM      1 (feat_shape is full)      weights, biases
DENSE      1 (feat_shape is full)      loss scalars, global stats
=========  ==========================  =============================

Keeping the leading extent symbolic is what lets the analytic pipeline
account for tensors on graphs that are never materialised (reddit-full).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Tuple

import numpy as np

__all__ = ["Domain", "TensorSpec"]


class Domain(Enum):
    """Which graph dimension a tensor's leading axis runs over."""

    VERTEX = "vertex"
    EDGE = "edge"
    PARAM = "param"
    DENSE = "dense"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Domain.{self.name}"


@dataclass(frozen=True)
class TensorSpec:
    """Static description of a tensor: domain, feature shape, dtype.

    Parameters
    ----------
    domain:
        Graph dimension of the leading axis.
    feat_shape:
        Trailing axes.  ``()`` denotes a per-row scalar (e.g. an
        attention logit per edge).
    dtype:
        NumPy dtype string.  Defaults to ``float32`` — matching the GPU
        precision the paper's byte counts assume.  The concrete engine
        may compute in float64 for gradient checking; *accounting* always
        uses this declared dtype.
    """

    domain: Domain
    feat_shape: Tuple[int, ...] = ()
    dtype: str = "float32"

    def __post_init__(self) -> None:
        fs = tuple(int(d) for d in self.feat_shape)
        if any(d <= 0 for d in fs):
            raise ValueError(f"feature dims must be positive, got {fs}")
        object.__setattr__(self, "feat_shape", fs)
        # Validate the dtype eagerly so errors surface at build time.
        np.dtype(self.dtype)

    # ------------------------------------------------------------------
    @property
    def feat_elements(self) -> int:
        """Number of elements per leading row."""
        return math.prod(self.feat_shape) if self.feat_shape else 1

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    def rows(self, num_vertices: int, num_edges: int) -> int:
        """Leading extent given the graph size."""
        if self.domain is Domain.VERTEX:
            return num_vertices
        if self.domain is Domain.EDGE:
            return num_edges
        return 1

    def elements(self, num_vertices: int, num_edges: int) -> int:
        return self.rows(num_vertices, num_edges) * self.feat_elements

    def nbytes(self, num_vertices: int, num_edges: int) -> int:
        return self.elements(num_vertices, num_edges) * self.itemsize

    # ------------------------------------------------------------------
    def with_feat(self, feat_shape: Tuple[int, ...]) -> "TensorSpec":
        """Same domain/dtype with a different feature shape."""
        return TensorSpec(self.domain, tuple(feat_shape), self.dtype)

    def with_domain(self, domain: Domain) -> "TensorSpec":
        return TensorSpec(domain, self.feat_shape, self.dtype)

    def with_dtype(self, dtype: str) -> "TensorSpec":
        return TensorSpec(self.domain, self.feat_shape, dtype)

    def __str__(self) -> str:
        fs = "x".join(str(d) for d in self.feat_shape) or "scalar"
        return f"{self.domain.value}[{fs}]:{self.dtype}"


def broadcast_feat_shapes(*shapes: Tuple[int, ...]) -> Tuple[int, ...]:
    """Broadcast feature shapes under the library's right-pad rule.

    Lower-rank shapes are padded with singleton axes **on the right**
    before standard NumPy broadcasting.  Right-padding (instead of
    NumPy's left-padding) is what makes per-row scalars broadcast against
    per-row vectors: an attention logit ``()`` multiplies a message
    ``(f,)`` by expanding to ``(1,)``, and a MoNet kernel weight ``(K,)``
    multiplies projected features ``(K, f)`` by expanding to ``(K, 1)``.
    """
    rank = max((len(s) for s in shapes), default=0)
    padded = [s + (1,) * (rank - len(s)) for s in shapes]
    try:
        return tuple(int(d) for d in np.broadcast_shapes(*padded))
    except ValueError as exc:  # pragma: no cover - message passthrough
        raise ValueError(f"feature shapes not broadcastable: {shapes}") from exc
