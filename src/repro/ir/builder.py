"""Authoring API for operator DAGs.

The :class:`Builder` is how models (and optimization passes) assemble
:class:`~repro.ir.module.Module` instances.  It owns unique-name
generation, runs shape/domain inference on every emitted node, and
provides the composite macros of §2.1 (``aggregate``, ``edge_softmax``)
which expand into basic operators tagged with a shared macro id.

Typical use::

    b = Builder("gcn_layer")
    h = b.input("h", Domain.VERTEX, (16,))
    w = b.param("w", (16, 8))
    hw = b.apply("linear", h, params=[w])
    msg = b.scatter("copy_u", u=hw)
    agg = b.gather("sum", msg)
    b.output(agg)
    module = b.build()
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.ir.module import GRAPH_CONSTANTS, Module, infer_output_specs
from repro.ir.ops import OpKind, OpNode
from repro.ir.tensorspec import Domain, TensorSpec

__all__ = ["Builder", "Val"]


@dataclass(frozen=True)
class Val:
    """A handle to one value in the module under construction."""

    name: str
    spec: TensorSpec

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.spec}"


def _name_of(v: Union[Val, str]) -> str:
    return v.name if isinstance(v, Val) else v


class Builder:
    """Incrementally constructs a :class:`Module`.

    ``fresh_prefix`` namespaces generated value names — the autodiff
    builder uses it so backward-generated names can never collide with
    forward names when the recomputation pass splices forward nodes
    into a backward module.
    """

    def __init__(self, name: str, *, fresh_prefix: str = ""):
        self._module = Module(name=name)
        self._counters: Dict[str, itertools.count] = {}
        self._macro_counter = itertools.count()
        self._fresh_prefix = fresh_prefix
        #: When set, nodes emitted without an explicit macro inherit this
        #: id.  The autodiff builder uses it to give backward nodes the
        #: provenance of their forward macro, so framework-builtin fused
        #: kernels (edge-softmax, gSpMM) keep their hand-written fused
        #: *backward* kernels under macro-scope fusion.
        self.default_macro: Optional[str] = None

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def fresh(self, prefix: str) -> str:
        """A value name unique within this module."""
        prefix = f"{self._fresh_prefix}{prefix}"
        while True:
            counter = self._counters.setdefault(prefix, itertools.count())
            candidate = f"{prefix}.{next(counter)}"
            if candidate not in self._module.specs:
                return candidate

    def _register(self, name: str, spec: TensorSpec) -> Val:
        if name in self._module.specs:
            raise ValueError(f"value {name!r} already defined")
        self._module.specs[name] = spec
        return Val(name, spec)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def input(
        self,
        name: str,
        domain: Domain,
        feat_shape: Tuple[int, ...] = (),
        dtype: str = "float32",
    ) -> Val:
        """Declare a data input."""
        val = self._register(name, TensorSpec(domain, feat_shape, dtype))
        self._module.inputs.append(name)
        return val

    def graph_constant(self, which: str) -> Val:
        """Declare a graph-derived input (``in_degrees``/``out_degrees``).

        The execution engine supplies these from the bound graph; they
        are never stashed and cost nothing to recompute.
        """
        name = f"g_{which}"
        if name not in GRAPH_CONSTANTS:
            raise KeyError(
                f"unknown graph constant {which!r}; available: "
                f"{sorted(k[2:] for k in GRAPH_CONSTANTS)}"
            )
        if name in self._module.specs:
            return Val(name, self._module.specs[name])
        val = self._register(name, GRAPH_CONSTANTS[name])
        self._module.inputs.append(name)
        return val

    def param(self, name: str, shape: Tuple[int, ...], dtype: str = "float32") -> Val:
        """Declare a trainable parameter."""
        val = self._register(name, TensorSpec(Domain.PARAM, shape, dtype))
        self._module.params.append(name)
        return val

    def output(self, val: Union[Val, str]) -> None:
        """Expose a value as a module output."""
        name = _name_of(val)
        if name not in self._module.specs:
            raise KeyError(f"cannot output unknown value {name!r}")
        if name not in self._module.outputs:
            self._module.outputs.append(name)

    # ------------------------------------------------------------------
    # Node emission
    # ------------------------------------------------------------------
    def add_node(self, node: OpNode) -> List[Val]:
        """Validate, infer output specs, and append a fully formed node."""
        out_specs = infer_output_specs(node, self._module.specs)
        vals = [self._register(o, out_specs[o]) for o in node.outputs]
        self._module.nodes.append(node)
        return vals

    def _emit(
        self,
        kind: OpKind,
        fn: str,
        inputs: Sequence[Union[Val, str]],
        *,
        params: Sequence[Union[Val, str]] = (),
        n_outputs: int = 1,
        attrs: Optional[dict] = None,
        name: Optional[str] = None,
        macro: Optional[str] = None,
    ) -> List[Val]:
        base = name or self.fresh(fn)
        outputs = [base] + [f"{base}.aux{i}" for i in range(1, n_outputs)]
        node = OpNode(
            kind=kind,
            fn=fn,
            inputs=tuple(_name_of(i) for i in inputs),
            outputs=tuple(outputs),
            params=tuple(_name_of(p) for p in params),
            attrs=dict(attrs or {}),
            macro=macro if macro is not None else self.default_macro,
        )
        return self.add_node(node)

    # ------------------------------------------------------------------
    # Basic operators (§2.1)
    # ------------------------------------------------------------------
    def scatter(
        self,
        fn: str,
        u: Optional[Union[Val, str]] = None,
        v: Optional[Union[Val, str]] = None,
        *,
        stop_gradient: bool = False,
        name: Optional[str] = None,
        macro: Optional[str] = None,
    ) -> Val:
        """Emit a Scatter: per-edge function of endpoint features."""
        inputs = [x for x in (u, v) if x is not None]
        attrs = {"stop_gradient": True} if stop_gradient else {}
        (out,) = self._emit(
            OpKind.SCATTER, fn, inputs, attrs=attrs, name=name, macro=macro
        )
        return out

    def max_grad(
        self,
        grad: Union[Val, str],
        argmax: Union[Val, str],
        *,
        name: Optional[str] = None,
        macro: Optional[str] = None,
    ) -> Val:
        """Route a vertex gradient to the argmax in-edge of each vertex."""
        (out,) = self._emit(
            OpKind.SCATTER, "max_grad", [grad, argmax], name=name, macro=macro
        )
        return out

    def gather(
        self,
        reduce: str,
        edge: Union[Val, str],
        *,
        orientation: str = "in",
        stop_gradient: bool = False,
        name: Optional[str] = None,
        macro: Optional[str] = None,
    ) -> Union[Val, Tuple[Val, Val]]:
        """Emit a Gather: per-vertex reduction over incident edges.

        ``reduce='max'`` returns ``(values, argmax)``; others return a
        single value.  ``orientation='out'`` reduces over out-edges
        (needed by Scatter backward).  ``stop_gradient`` marks reductions
        that autodiff treats as constants (the edge-softmax max).
        """
        attrs = {"orientation": orientation}
        if stop_gradient:
            attrs["stop_gradient"] = True
        n_out = 2 if reduce == "max" else 1
        vals = self._emit(
            OpKind.GATHER, reduce, [edge],
            n_outputs=n_out, attrs=attrs, name=name, macro=macro,
        )
        return (vals[0], vals[1]) if reduce == "max" else vals[0]

    def apply(
        self,
        fn: str,
        *inputs: Union[Val, str],
        params: Sequence[Union[Val, str]] = (),
        attrs: Optional[dict] = None,
        name: Optional[str] = None,
        macro: Optional[str] = None,
    ) -> Val:
        """Emit an Apply (ApplyEdge / ApplyVertex by input domain)."""
        (out,) = self._emit(
            OpKind.APPLY, fn, list(inputs),
            params=params, attrs=attrs, name=name, macro=macro,
        )
        return out

    def view(
        self,
        x: Union[Val, str],
        out_shape: Tuple[int, ...],
        *,
        name: Optional[str] = None,
        macro: Optional[str] = None,
    ) -> Val:
        """Zero-cost feature reshape."""
        (out,) = self._emit(
            OpKind.VIEW, "view", [x],
            attrs={"out_shape": tuple(out_shape)}, name=name, macro=macro,
        )
        return out

    def param_grad(
        self,
        fn: str,
        *inputs: Union[Val, str],
        out_shape: Tuple[int, ...],
        params: Sequence[Union[Val, str]] = (),
        name: Optional[str] = None,
    ) -> Val:
        """Emit a weight-gradient reduction."""
        (out,) = self._emit(
            OpKind.PARAM_GRAD, fn, list(inputs),
            params=params, attrs={"out_shape": tuple(out_shape)}, name=name,
        )
        return out

    # ------------------------------------------------------------------
    # Convenience compositions
    # ------------------------------------------------------------------
    def linear(
        self,
        x: Union[Val, str],
        weight: Union[Val, str],
        bias: Optional[Union[Val, str]] = None,
        *,
        name: Optional[str] = None,
    ) -> Val:
        """``x @ W (+ b)`` — an expensive Apply plus optional bias_add."""
        y = self.apply("linear", x, params=[weight], name=name)
        if bias is not None:
            y = self.apply("bias_add", y, params=[bias])
        return y

    # ------------------------------------------------------------------
    # Macros (§2.1 composite operators)
    # ------------------------------------------------------------------
    def new_macro(self, label: str) -> str:
        return f"{label}#{next(self._macro_counter)}"

    def edge_softmax(self, e: Union[Val, str], *, name: Optional[str] = None) -> Val:
        """ReduceScatter macro: numerically stable softmax over in-edges.

        Expands per Appendix A into RS1 (max, subtract) and RS2 (sum,
        divide).  The max reduction is marked ``stop_gradient`` — softmax
        is invariant to the subtracted constant, so no gradient flows
        through the max path (matching standard implementations).
        """
        macro = self.new_macro("edge_softmax")
        mx, _argmax = self.gather(
            "max", e, stop_gradient=True, macro=macro,
            name=self.fresh("esm_max"),
        )
        mx_e = self.scatter(
            "copy_v", v=mx, stop_gradient=True, macro=macro,
            name=self.fresh("esm_bmax"),
        )
        shifted = self.apply("sub", e, mx_e, macro=macro, name=self.fresh("esm_shift"))
        expd = self.apply("exp", shifted, macro=macro, name=self.fresh("esm_exp"))
        denom = self.gather("sum", expd, macro=macro, name=self.fresh("esm_sum"))
        denom_e = self.scatter(
            "copy_v", v=denom, macro=macro, name=self.fresh("esm_bsum")
        )
        out = self.apply(
            "div", expd, denom_e, macro=macro, name=name or self.fresh("esm_out")
        )
        return out

    def aggregate(
        self,
        vertex: Union[Val, str],
        edge: Optional[Union[Val, str]] = None,
        *,
        reduce: str = "sum",
        scatter_fn: str = "copy_u",
        name: Optional[str] = None,
    ) -> Union[Val, Tuple[Val, Val]]:
        """Aggregate macro: scatter + optional edge weighting + gather.

        This is the gSpMM-shaped composite current systems ship as one
        fused kernel (paper §2.1): e.g. GAT's ``reduce_sum(att, h̃)`` or
        GCN's weighted neighbour sum.
        """
        macro = self.new_macro("aggregate")
        msg = self.scatter(
            scatter_fn, u=vertex, macro=macro, name=self.fresh("agg_msg")
        )
        if edge is not None:
            msg = self.apply("mul", msg, edge, macro=macro, name=self.fresh("agg_wmsg"))
        return self.gather(reduce, msg, macro=macro, name=name or self.fresh("agg_out"))

    # ------------------------------------------------------------------
    def build(self) -> Module:
        """Finalise and validate the module."""
        from repro.ir.validate import validate_module

        validate_module(self._module)
        return self._module

    @property
    def module(self) -> Module:
        """The module under construction (not yet validated)."""
        return self._module

    def val(self, name: str) -> Val:
        """Handle to an already-defined value."""
        return Val(name, self._module.specs[name])
