"""Human-readable and Graphviz dumps of IR modules."""

from __future__ import annotations

from typing import Optional

from repro.ir.module import Module
from repro.ir.ops import OpKind

__all__ = ["format_module", "to_dot"]


def format_module(module: Module, *, show_specs: bool = True) -> str:
    """Pretty-print a module, one node per line.

    Example output::

        module gat_layer
          inputs: h:vertex[64]:float32
          params: w:param[64x64]:float32
          linear.0       = apply:linear(h | w)
          copy_u.0       = scatter:copy_u(linear.0)
          ...
          outputs: agg_out.0
    """
    lines = [f"module {module.name}"]
    if module.inputs:
        rendered = ", ".join(
            f"{n}:{module.specs[n]}" if show_specs else n for n in module.inputs
        )
        lines.append(f"  inputs: {rendered}")
    if module.params:
        rendered = ", ".join(
            f"{n}:{module.specs[n]}" if show_specs else n for n in module.params
        )
        lines.append(f"  params: {rendered}")
    width = max((len(", ".join(n.outputs)) for n in module.nodes), default=0)
    for node in module.nodes:
        lhs = ", ".join(node.outputs).ljust(width)
        args = ", ".join(node.inputs)
        if node.params:
            args += " | " + ", ".join(node.params)
        extra = ""
        if node.attrs:
            shown = {k: v for k, v in node.attrs.items() if k != "orientation"}
            orient = node.attrs.get("orientation")
            if orient and orient != "in":
                shown["orientation"] = orient
            if shown:
                extra += f" {shown}"
        if node.macro:
            extra += f"  # {node.macro}"
        lines.append(f"  {lhs} = {node.kind.value}:{node.fn}({args}){extra}")
    lines.append(f"  outputs: {', '.join(module.outputs)}")
    return "\n".join(lines)


_KIND_COLORS = {
    OpKind.SCATTER: "lightblue",
    OpKind.GATHER: "lightsalmon",
    OpKind.APPLY: "lightgrey",
    OpKind.PARAM_GRAD: "plum",
    OpKind.VIEW: "white",
}


def to_dot(module: Module, *, name: Optional[str] = None) -> str:
    """Graphviz DOT rendering (one node per op, edges are dataflow)."""
    out = [f'digraph "{name or module.name}" {{', "  rankdir=TB;"]
    for n in module.inputs + module.params:
        out.append(f'  "{n}" [shape=ellipse, style=dashed];')
    for node in module.nodes:
        color = _KIND_COLORS.get(node.kind, "white")
        label = f"{node.kind.value}:{node.fn}"
        if node.is_expensive():
            label += " ($$)"
        out.append(
            f'  "{node.name}" [shape=box, style=filled, '
            f'fillcolor={color}, label="{label}\\n{node.name}"];'
        )
        for i in node.all_inputs():
            out.append(f'  "{i}" -> "{node.name}";')
        for extra in node.outputs[1:]:
            out.append(f'  "{extra}" [shape=note];')
            out.append(f'  "{node.name}" -> "{extra}";')
    for o in module.outputs:
        out.append(f'  "out:{o}" [shape=doublecircle];')
        out.append(f'  "{o}" -> "out:{o}";')
    out.append("}")
    return "\n".join(out)
