"""Backward-graph construction following the paper's Appendix B.

The central theorem the paper relies on (§2.2): *the backward pass of
every operator in the abstraction is expressible in the same operator
set*.  Concretely:

- backward(``Gather``)  = ``Scatter`` (+ ``ApplyEdge``),
- backward(``Scatter``) = ``Gather``  (+ ``ApplyVertex``),
- backward(``Apply-``)  = two ``Apply-`` (input grad + weight grad).

:func:`differentiate` materialises that theorem: given a forward
:class:`~repro.ir.module.Module` it emits a *backward module in the same
IR*, which is why the fusion and recomputation passes run on training
graphs unchanged.

Saved values
------------
Whenever a backward rule references a forward value, that value becomes
an input of the backward module **under its forward name**.  The set of
such references that are forward *intermediates* (produced by forward
nodes, not bound inputs/params) is exactly the "intermediate data must
be stashed" set the paper's Section 6 is about; the recomputation pass
later decides, per value, stash vs recompute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.builder import Builder, Val
from repro.ir.module import Module
from repro.ir.ops import OpKind, OpNode
from repro.ir.tensorspec import Domain, TensorSpec
from repro.ir.transform import prune_dead

__all__ = ["differentiate", "TrainingGraph", "grad_seed_name"]


def grad_seed_name(value_name: str) -> str:
    """Backward-module input name holding the gradient of ``value_name``."""
    return f"grad__{value_name}"


@dataclass
class TrainingGraph:
    """A forward module paired with its derived backward module.

    Attributes
    ----------
    forward, backward:
        The two IR modules.  ``backward``'s inputs are the gradient
        seeds (``grad__<output>``) plus every forward value its rules
        referenced (under forward names).
    saved_values:
        Forward values (node outputs) the backward pass references —
        §6's intermediate-data set.  Order follows first reference.
    param_grads:
        Forward param name → backward output name of its gradient.
    input_grads:
        Forward input name → backward output name (only for inputs
        requested via ``wrt_inputs``).
    """

    forward: Module
    backward: Module
    saved_values: List[str]
    param_grads: Dict[str, str]
    input_grads: Dict[str, str]

    def seeded_outputs(self) -> List[str]:
        return [
            name
            for name in self.forward.outputs
            if grad_seed_name(name) in self.backward.specs
        ]


class _Diff:
    """Single-use context for one differentiation run."""

    def __init__(self, forward: Module, wrt_inputs: Sequence[str]):
        self.fwd = forward
        # The fresh-name prefix guarantees backward-generated names never
        # collide with forward names spliced in by the recompute pass.
        self.b = Builder(f"{forward.name}_backward", fresh_prefix="bwd$")
        self.wrt_inputs = list(wrt_inputs)
        self.saved: List[str] = []
        # forward value name -> list of partial grads to be summed
        self.partials: Dict[str, List[Val]] = {}
        self._combined: Dict[str, Val] = {}
        self._fwd_produced = {
            o for node in forward.nodes for o in node.outputs
        }
        self._ref_cache: Dict[str, Val] = {}

    # -- referencing forward values from backward ----------------------
    def ref(self, name: str) -> Val:
        """Make forward value ``name`` available inside the backward module."""
        if name in self._ref_cache:
            return self._ref_cache[name]
        spec = self.fwd.specs[name]
        val = self.b.input(name, spec.domain, spec.feat_shape, spec.dtype)
        if name in self._fwd_produced:
            self.saved.append(name)
        self._ref_cache[name] = val
        return val

    # -- gradient bookkeeping ------------------------------------------
    def add_partial(self, name: str, grad: Val) -> None:
        target = self.fwd.specs[name]
        grad = self._match_shape(grad, target)
        self.partials.setdefault(name, []).append(grad)
        self._combined.pop(name, None)

    def grad_of(self, name: str) -> Optional[Val]:
        """Combined gradient of a forward value, or None if none flowed."""
        if name in self._combined:
            return self._combined[name]
        parts = self.partials.get(name)
        if not parts:
            return None
        total = parts[0]
        for p in parts[1:]:
            total = self.b.apply("add", total, p, name=self.b.fresh(f"gacc_{name}"))
        self._combined[name] = total
        return total

    def _match_shape(self, grad: Val, target: TensorSpec) -> Val:
        """Undo right-pad broadcasting so the partial matches its value."""
        if grad.spec.feat_shape == target.feat_shape:
            return grad
        return self.b.apply(
            "reduce_to_shape",
            grad,
            attrs={"target_shape": target.feat_shape},
        )

    # -- main loop ------------------------------------------------------
    def run(self, wrt_outputs: Sequence[str]) -> TrainingGraph:
        for out in wrt_outputs:
            spec = self.fwd.specs[out]
            seed = self.b.input(
                grad_seed_name(out), spec.domain, spec.feat_shape, spec.dtype
            )
            self.add_partial(out, seed)

        for node in reversed(self.fwd.nodes):
            if node.attrs.get("stop_gradient"):
                continue
            g = self.grad_of(node.outputs[0])
            if g is None:
                continue
            rule = _RULES.get(node.kind)
            if rule is None:
                raise NotImplementedError(f"no backward rule for kind {node.kind}")
            # Backward nodes inherit the forward macro: the backward of a
            # framework-builtin fused kernel is itself a hand-written
            # fused kernel (DGL's edge-softmax/SpMM backward), which
            # macro-scope fusion must reproduce.
            self.b.default_macro = node.macro
            try:
                rule(self, node, g)
            finally:
                self.b.default_macro = None

        param_grads: Dict[str, str] = {}
        for p in self.fwd.params:
            g = self.grad_of(p)
            if g is not None:
                self.b.output(g)
                param_grads[p] = g.name
        input_grads: Dict[str, str] = {}
        for i in self.wrt_inputs:
            g = self.grad_of(i)
            if g is not None:
                self.b.output(g)
                input_grads[i] = g.name

        backward = prune_dead(self.b.build())
        # Recompute the saved set from the *pruned* interface: gradient
        # paths killed by stop_gradient must not force stashes.
        saved = [i for i in backward.inputs if i in self._fwd_produced]
        return TrainingGraph(
            forward=self.fwd,
            backward=backward,
            saved_values=saved,
            param_grads=param_grads,
            input_grads=input_grads,
        )


# ======================================================================
# Per-kind rules
# ======================================================================
def _rule_scatter(d: _Diff, node: OpNode, g: Val) -> None:
    """backward(Scatter) = Gather (+ ApplyVertex) — Appendix B."""
    b = d.b
    fn = node.fn
    if fn == "max_grad":
        raise NotImplementedError("max_grad appears only in backward graphs")
    if fn == "copy_u":
        d.add_partial(node.inputs[0], b.gather("sum", g, orientation="out"))
        return
    if fn == "copy_v":
        d.add_partial(node.inputs[0], b.gather("sum", g, orientation="in"))
        return
    u_name, v_name = node.inputs
    if fn == "u_add_v":
        d.add_partial(u_name, b.gather("sum", g, orientation="out"))
        d.add_partial(v_name, b.gather("sum", g, orientation="in"))
        return
    if fn == "u_sub_v":
        d.add_partial(u_name, b.gather("sum", g, orientation="out"))
        gv = b.gather("sum", g, orientation="in")
        d.add_partial(v_name, b.apply("neg", gv))
        return
    if fn in ("u_mul_v", "u_dot_v"):
        hv_e = b.scatter("copy_v", v=d.ref(v_name))
        hu_e = b.scatter("copy_u", u=d.ref(u_name))
        d.add_partial(
            u_name, b.gather("sum", b.apply("mul", g, hv_e), orientation="out")
        )
        d.add_partial(
            v_name, b.gather("sum", b.apply("mul", g, hu_e), orientation="in")
        )
        return
    if fn == "u_concat_v":
        fu = d.fwd.specs[u_name].feat_shape[-1]
        fv = d.fwd.specs[v_name].feat_shape[-1]
        gu = b.apply("slice_axis", g, attrs={"axis": -1, "start": 0, "stop": fu})
        gv = b.apply(
            "slice_axis", g, attrs={"axis": -1, "start": fu, "stop": fu + fv}
        )
        d.add_partial(u_name, b.gather("sum", gu, orientation="out"))
        d.add_partial(v_name, b.gather("sum", gv, orientation="in"))
        return
    raise NotImplementedError(f"no backward rule for scatter fn {fn!r}")


def _rule_gather(d: _Diff, node: OpNode, g: Val) -> None:
    """backward(Gather) = Scatter (+ ApplyEdge) — Appendix B."""
    b = d.b
    orientation = node.orientation
    back_copy = "copy_v" if orientation == "in" else "copy_u"
    (edge_name,) = node.inputs
    if node.fn == "sum":
        d.add_partial(edge_name, b.scatter(back_copy, **{back_copy[-1]: g}))
        return
    if node.fn == "mean":
        deg = b.graph_constant(
            "in_degrees" if orientation == "in" else "out_degrees"
        )
        safe = b.apply("clamp_min", deg, attrs={"min": 1.0})
        scaled = b.apply("div", g, safe)
        d.add_partial(edge_name, b.scatter(back_copy, **{back_copy[-1]: scaled}))
        return
    if node.fn == "max":
        if orientation != "in":
            raise NotImplementedError("max gather backward only for 'in' orientation")
        argmax = d.ref(node.outputs[1])
        d.add_partial(edge_name, b.max_grad(g, argmax))
        return
    raise NotImplementedError(f"no backward rule for gather reduce {node.fn!r}")


def _rule_view(d: _Diff, node: OpNode, g: Val) -> None:
    in_shape = d.fwd.specs[node.inputs[0]].feat_shape
    d.add_partial(node.inputs[0], d.b.view(g, in_shape))


def _rule_param_grad(d: _Diff, node: OpNode, g: Val) -> None:
    raise NotImplementedError("param_grad appears only in backward graphs")


# ----------------------------------------------------------------------
# Apply rules, keyed by function name
# ----------------------------------------------------------------------
ApplyRule = Callable[[_Diff, OpNode, Val], None]
_APPLY_RULES: Dict[str, ApplyRule] = {}


def _apply_rule(name: str):
    def register(fn: ApplyRule) -> ApplyRule:
        _APPLY_RULES[name] = fn
        return fn

    return register


def _rule_apply(d: _Diff, node: OpNode, g: Val) -> None:
    rule = _APPLY_RULES.get(node.fn)
    if rule is None:
        raise NotImplementedError(f"no backward rule for apply fn {node.fn!r}")
    rule(d, node, g)


@_apply_rule("identity")
def _bw_identity(d, node, g):
    d.add_partial(node.inputs[0], g)


@_apply_rule("neg")
def _bw_neg(d, node, g):
    d.add_partial(node.inputs[0], d.b.apply("neg", g))


@_apply_rule("scale")
def _bw_scale(d, node, g):
    d.add_partial(
        node.inputs[0],
        d.b.apply("scale", g, attrs={"factor": node.attrs["factor"]}),
    )


@_apply_rule("relu")
def _bw_relu(d, node, g):
    d.add_partial(node.inputs[0], d.b.apply("relu_grad", g, d.ref(node.inputs[0])))


@_apply_rule("leaky_relu")
def _bw_leaky_relu(d, node, g):
    d.add_partial(
        node.inputs[0],
        d.b.apply(
            "leaky_relu_grad", g, d.ref(node.inputs[0]),
            attrs={"slope": node.attrs.get("slope", 0.01)},
        ),
    )


@_apply_rule("exp")
def _bw_exp(d, node, g):
    d.add_partial(node.inputs[0], d.b.apply("mul", g, d.ref(node.outputs[0])))


@_apply_rule("sigmoid")
def _bw_sigmoid(d, node, g):
    d.add_partial(node.inputs[0], d.b.apply("sigmoid_grad", g, d.ref(node.outputs[0])))


@_apply_rule("tanh")
def _bw_tanh(d, node, g):
    d.add_partial(node.inputs[0], d.b.apply("tanh_grad", g, d.ref(node.outputs[0])))


@_apply_rule("add")
def _bw_add(d, node, g):
    d.add_partial(node.inputs[0], g)
    d.add_partial(node.inputs[1], g)


@_apply_rule("sub")
def _bw_sub(d, node, g):
    d.add_partial(node.inputs[0], g)
    d.add_partial(node.inputs[1], d.b.apply("neg", g))


@_apply_rule("mul")
def _bw_mul(d, node, g):
    a, b_name = node.inputs
    d.add_partial(a, d.b.apply("mul", g, d.ref(b_name)))
    d.add_partial(b_name, d.b.apply("mul", g, d.ref(a)))


@_apply_rule("div")
def _bw_div(d, node, g):
    a, b_name = node.inputs
    ga = d.b.apply("div", g, d.ref(b_name))
    d.add_partial(a, ga)
    gb = d.b.apply("neg", d.b.apply("div", d.b.apply("mul", ga, d.ref(a)), d.ref(b_name)))
    d.add_partial(b_name, gb)


@_apply_rule("clamp_min")
def _bw_clamp_min(d, node, g):
    # clamp_min is only used on graph constants (degrees); no gradient
    # ever needs to flow through it, so the partial is intentionally
    # dropped rather than emitting dead mask arithmetic.
    return


@_apply_rule("linear")
def _bw_linear(d, node, g):
    (x,) = node.inputs
    (w,) = node.params
    d.add_partial(x, d.b.apply("linear_grad_input", g, params=[d.ref(w)]))
    w_shape = d.fwd.specs[w].feat_shape
    d.add_partial(
        w,
        d.b.param_grad("linear_wgrad", d.ref(x), g, out_shape=w_shape),
    )


@_apply_rule("bias_add")
def _bw_bias_add(d, node, g):
    (x,) = node.inputs
    (bias,) = node.params
    d.add_partial(x, g)
    bias_shape = d.fwd.specs[bias].feat_shape
    d.add_partial(bias, d.b.param_grad("bias_grad", g, out_shape=bias_shape))


@_apply_rule("param_scale")
def _bw_param_scale(d, node, g):
    (x,) = node.inputs
    (p,) = node.params
    d.add_partial(x, d.b.apply("param_scale", g, params=[d.ref(p)]))
    d.add_partial(
        p, d.b.param_grad("param_scale_wgrad", d.ref(x), g, out_shape=())
    )


@_apply_rule("head_dot")
def _bw_head_dot(d, node, g):
    (x,) = node.inputs
    (a,) = node.params
    d.add_partial(x, d.b.apply("head_dot_grad_input", g, params=[d.ref(a)]))
    a_shape = d.fwd.specs[a].feat_shape
    d.add_partial(
        a, d.b.param_grad("head_dot_wgrad", d.ref(x), g, out_shape=a_shape)
    )


@_apply_rule("gaussian")
def _bw_gaussian(d, node, g):
    (m,) = node.inputs
    mu, inv_sigma = node.params
    w_out = d.ref(node.outputs[0])
    d.add_partial(
        m,
        d.b.apply(
            "gaussian_grad_input", g, d.ref(m), w_out,
            params=[d.ref(mu), d.ref(inv_sigma)],
        ),
    )
    mu_shape = d.fwd.specs[mu].feat_shape
    d.add_partial(
        mu,
        d.b.param_grad(
            "gaussian_mu_grad", d.ref(m), w_out, g,
            out_shape=mu_shape, params=[d.ref(mu), d.ref(inv_sigma)],
        ),
    )
    d.add_partial(
        inv_sigma,
        d.b.param_grad(
            "gaussian_sigma_grad", d.ref(m), w_out, g,
            out_shape=mu_shape, params=[d.ref(mu), d.ref(inv_sigma)],
        ),
    )


@_apply_rule("kernel_mean")
def _bw_kernel_mean(d, node, g):
    k = d.fwd.specs[node.inputs[0]].feat_shape[0]
    d.add_partial(
        node.inputs[0],
        d.b.apply("kernel_mean_grad", g, attrs={"num_kernels": k}),
    )


@_apply_rule("slice_axis")
def _bw_slice_axis(d, node, g):
    in_shape = d.fwd.specs[node.inputs[0]].feat_shape
    axis = node.attrs.get("axis", -1)
    axis = axis + len(in_shape) if axis < 0 else axis
    d.add_partial(
        node.inputs[0],
        d.b.apply(
            "pad_axis", g,
            attrs={
                "axis": axis,
                "start": node.attrs["start"],
                "stop": node.attrs["stop"],
                "width": in_shape[axis],
            },
        ),
    )


@_apply_rule("view")
def _bw_view_apply(d, node, g):  # pragma: no cover - views use OpKind.VIEW
    _rule_view(d, node, g)


_RULES = {
    OpKind.SCATTER: _rule_scatter,
    OpKind.GATHER: _rule_gather,
    OpKind.APPLY: _rule_apply,
    OpKind.VIEW: _rule_view,
    OpKind.PARAM_GRAD: _rule_param_grad,
}


# ======================================================================
def differentiate(
    forward: Module,
    *,
    wrt_outputs: Optional[Sequence[str]] = None,
    wrt_inputs: Sequence[str] = (),
) -> TrainingGraph:
    """Construct the backward module of ``forward``.

    Parameters
    ----------
    wrt_outputs:
        Forward outputs receiving gradient seeds (default: all).  Each
        seed becomes a backward input named ``grad__<output>``.
    wrt_inputs:
        Forward data inputs whose gradients should be exposed as
        backward outputs (off by default — GNN training differentiates
        with respect to parameters only).

    Returns
    -------
    TrainingGraph
        Forward + backward pair with the saved-value inventory that the
        recomputation pass (and the engine's stash logic) consume.
    """
    outs = list(wrt_outputs) if wrt_outputs is not None else list(forward.outputs)
    unknown = [o for o in outs if o not in forward.outputs]
    if unknown:
        raise ValueError(f"wrt_outputs not in module outputs: {unknown}")
    return _Diff(forward, wrt_inputs).run(outs)
