"""The IR container: a named DAG of operator nodes.

A :class:`Module` is an ordered list of :class:`~repro.ir.ops.OpNode`
(the order is a valid topological order — enforced by
:func:`repro.ir.validate.validate_module`), plus the value-name →
:class:`~repro.ir.tensorspec.TensorSpec` table and the interface lists
(inputs / params / outputs).

Shape and domain inference for every node kind lives here
(:func:`infer_output_specs`) so the builder, the optimization passes and
the validator all agree on one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.ir.functions import get_apply_fn, get_scatter_fn
from repro.ir.ops import GATHER_REDUCES, OpKind, OpNode
from repro.ir.tensorspec import Domain, TensorSpec

__all__ = ["Module", "infer_output_specs", "GRAPH_CONSTANTS"]

# Reserved input names the execution engine fills from the graph itself.
# They are "free" inputs: never stashed, never counted as user data.
GRAPH_CONSTANTS: Dict[str, TensorSpec] = {
    "g_in_degrees": TensorSpec(Domain.VERTEX, (), "float32"),
    "g_out_degrees": TensorSpec(Domain.VERTEX, (), "float32"),
}


def infer_output_specs(
    node: OpNode, specs: Mapping[str, TensorSpec]
) -> Dict[str, TensorSpec]:
    """Compute the TensorSpec of each output of ``node``.

    Raises ``ValueError``/``KeyError`` on malformed nodes — this is the
    single source of truth for operator typing rules.

    ``qint8`` is a storage dtype only: quantised rows are dequantised
    to float32 before any operator reads them, so inference sees such
    inputs as float32 and derived values never carry ``qint8``.
    """
    for name in node.all_inputs():
        if name not in specs:
            raise KeyError(f"node {node.name!r} references unknown value {name!r}")
    deq = {
        name: specs[name].with_dtype("float32")
        for name in node.all_inputs()
        if specs[name].dtype == "qint8"
    }
    if deq:
        specs = {**dict(specs), **deq}

    if node.kind is OpKind.SCATTER:
        return _infer_scatter(node, specs)
    if node.kind is OpKind.GATHER:
        return _infer_gather(node, specs)
    if node.kind is OpKind.APPLY:
        return _infer_apply(node, specs)
    if node.kind is OpKind.PARAM_GRAD:
        return _infer_param_grad(node, specs)
    if node.kind is OpKind.VIEW:
        return _infer_view(node, specs)
    raise AssertionError(f"unhandled kind {node.kind}")


def _infer_scatter(node: OpNode, specs) -> Dict[str, TensorSpec]:
    fn = get_scatter_fn(node.fn)
    if fn.name == "max_grad":
        grad_spec, idx_spec = (specs[n] for n in node.inputs)
        for s, label in ((grad_spec, "gradient"), (idx_spec, "argmax")):
            if s.domain is not Domain.VERTEX:
                raise ValueError(f"max_grad {label} input must be VERTEX, got {s}")
        if grad_spec.feat_shape != idx_spec.feat_shape:
            raise ValueError(
                "max_grad gradient/argmax feature shapes must match: "
                f"{grad_spec.feat_shape} vs {idx_spec.feat_shape}"
            )
        out = TensorSpec(Domain.EDGE, grad_spec.feat_shape, grad_spec.dtype)
        return {node.outputs[0]: out}

    expected_arity = int(fn.reads_u) + int(fn.reads_v)
    if len(node.inputs) != expected_arity:
        raise ValueError(
            f"scatter {fn.name} expects {expected_arity} inputs, got {len(node.inputs)}"
        )
    shapes: List[Optional[Tuple[int, ...]]] = [None, None]
    dtype = None
    pos = 0
    for side, reads in ((0, fn.reads_u), (1, fn.reads_v)):
        if reads:
            spec = specs[node.inputs[pos]]
            if spec.domain is not Domain.VERTEX:
                raise ValueError(
                    f"scatter {fn.name} operand {node.inputs[pos]!r} must be "
                    f"VERTEX, got {spec.domain}"
                )
            shapes[side] = spec.feat_shape
            dtype = spec.dtype
            pos += 1
    out_shape = fn.out_feat_shape(shapes[0], shapes[1])
    return {node.outputs[0]: TensorSpec(Domain.EDGE, out_shape, dtype)}


def _infer_gather(node: OpNode, specs) -> Dict[str, TensorSpec]:
    reduce = node.fn
    if reduce not in GATHER_REDUCES:
        raise ValueError(f"unknown gather reduce {reduce!r}; allowed {GATHER_REDUCES}")
    if node.orientation not in ("in", "out"):
        raise ValueError(f"gather orientation must be 'in' or 'out', got {node.orientation!r}")
    (edge_name,) = node.inputs
    edge_spec = specs[edge_name]
    if edge_spec.domain is not Domain.EDGE:
        raise ValueError(f"gather input must be EDGE, got {edge_spec}")
    out = TensorSpec(Domain.VERTEX, edge_spec.feat_shape, edge_spec.dtype)
    result = {node.outputs[0]: out}
    if reduce == "max":
        if len(node.outputs) != 2:
            raise ValueError("gather(max) must declare (values, argmax) outputs")
        result[node.outputs[1]] = TensorSpec(
            Domain.VERTEX, edge_spec.feat_shape, "int64"
        )
    elif len(node.outputs) != 1:
        raise ValueError(f"gather({reduce}) must have exactly one output")
    return result


def _infer_apply(node: OpNode, specs) -> Dict[str, TensorSpec]:
    fn = get_apply_fn(node.fn)
    if len(node.inputs) != fn.arity:
        raise ValueError(
            f"apply {fn.name} expects {fn.arity} inputs, got {len(node.inputs)}"
        )
    if len(node.params) != fn.n_params:
        raise ValueError(
            f"apply {fn.name} expects {fn.n_params} params, got {len(node.params)}"
        )
    domains = {specs[n].domain for n in node.inputs}
    if len(domains) != 1:
        raise ValueError(
            f"apply {fn.name} inputs must share one domain, got {domains}"
        )
    domain = domains.pop()
    for p in node.params:
        if specs[p].domain is not Domain.PARAM:
            raise ValueError(f"apply param {p!r} must be PARAM domain")
    in_shapes = [specs[n].feat_shape for n in node.inputs]
    param_shapes = [specs[n].feat_shape for n in node.params]
    out_shape = fn.infer_shape(in_shapes, param_shapes, node.attrs)
    dtype = specs[node.inputs[0]].dtype
    return {node.outputs[0]: TensorSpec(domain, out_shape, dtype)}


def _infer_param_grad(node: OpNode, specs) -> Dict[str, TensorSpec]:
    out_shape = tuple(int(d) for d in node.attrs["out_shape"])
    domains = {specs[n].domain for n in node.inputs}
    if not domains <= {Domain.VERTEX, Domain.EDGE}:
        raise ValueError(f"param_grad inputs must be VERTEX/EDGE, got {domains}")
    if len(domains) != 1:
        raise ValueError("param_grad inputs must share one domain")
    dtype = specs[node.inputs[0]].dtype
    return {node.outputs[0]: TensorSpec(Domain.PARAM, out_shape, dtype)}


def _infer_view(node: OpNode, specs) -> Dict[str, TensorSpec]:
    (x,) = node.inputs
    spec = specs[x]
    fn = get_apply_fn("view")
    out_shape = fn.infer_shape([spec.feat_shape], (), node.attrs)
    return {node.outputs[0]: TensorSpec(spec.domain, out_shape, spec.dtype)}


@dataclass
class Module:
    """An operator DAG with a typed interface.

    Attributes
    ----------
    name:
        Diagnostic label (``"gat_forward"``, ``"gat_backward"`` …).
    nodes:
        Operator list in a valid topological order.
    specs:
        Every value name (inputs, params, all node outputs) → spec.
    inputs:
        Data inputs, including any graph constants used.
    params:
        Trainable parameter inputs.
    outputs:
        Values exposed to the caller.
    """

    name: str
    nodes: List[OpNode] = field(default_factory=list)
    specs: Dict[str, TensorSpec] = field(default_factory=dict)
    inputs: List[str] = field(default_factory=list)
    params: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Indexes (rebuilt on demand; modules are treated as immutable once
    # built, passes construct new ones)
    # ------------------------------------------------------------------
    def producer_map(self) -> Dict[str, OpNode]:
        """Value name → producing node (absent for inputs/params)."""
        out: Dict[str, OpNode] = {}
        for node in self.nodes:
            for o in node.outputs:
                out[o] = node
        return out

    def consumer_map(self) -> Dict[str, List[OpNode]]:
        """Value name → consuming nodes (data and param uses)."""
        out: Dict[str, List[OpNode]] = {name: [] for name in self.specs}
        for node in self.nodes:
            for i in node.all_inputs():
                out.setdefault(i, []).append(node)
        return out

    def interface_names(self) -> set:
        return set(self.inputs) | set(self.params)

    def intermediate_names(self) -> List[str]:
        """Values produced by nodes, excluding module outputs."""
        outs = set(self.outputs)
        names = []
        for node in self.nodes:
            for o in node.outputs:
                if o not in outs:
                    names.append(o)
        return names

    def node_by_output(self, name: str) -> OpNode:
        for node in self.nodes:
            if name in node.outputs:
                return node
        raise KeyError(f"no node produces {name!r}")

    # ------------------------------------------------------------------
    def total_flops(self, stats) -> float:
        """Sum of node FLOPs on ``stats`` — the computation counter."""
        return sum(node.flops(self.specs, stats) for node in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Module({self.name!r}, nodes={len(self.nodes)}, "
            f"inputs={self.inputs}, params={len(self.params)}, "
            f"outputs={self.outputs})"
        )
