"""Small structural IR transformations shared by autodiff and passes.

These are deliberately conservative: they never change values, only
remove provably dead structure or re-derive interface lists.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.ir.module import GRAPH_CONSTANTS, Module
from repro.ir.ops import OpKind, OpNode

__all__ = ["prune_dead", "used_value_names", "common_subexpression_eliminate"]


def used_value_names(module: Module) -> Set[str]:
    """Values transitively needed to produce the module outputs."""
    producer = module.producer_map()
    live: Set[str] = set()
    stack = list(module.outputs)
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        node = producer.get(name)
        if node is not None:
            stack.extend(node.all_inputs())
    return live


def prune_dead(module: Module) -> Module:
    """Drop nodes (and unused interface entries) not reaching any output.

    A multi-output node survives if *any* of its outputs is live; its
    dead auxiliary outputs stay declared (the engine skips materialising
    aux outputs with no consumers).  Unused inputs are dropped from the
    interface — important for backward modules, where a dead reference
    would otherwise force a pointless stash.  Params are kept even when
    unused so optimizer state stays aligned with the model.
    """
    live = used_value_names(module)
    nodes = [n for n in module.nodes if any(o in live for o in n.outputs)]
    defined = {o for n in nodes for o in n.outputs}

    inputs = [i for i in module.inputs if i in live]
    params = list(module.params)
    keep = set(inputs) | set(params) | defined
    specs = {name: spec for name, spec in module.specs.items() if name in keep}
    return Module(
        name=module.name,
        nodes=nodes,
        specs=specs,
        inputs=inputs,
        params=params,
        outputs=list(module.outputs),
    )


def _node_key(node: OpNode):
    attrs = tuple(sorted((k, _freeze(v)) for k, v in node.attrs.items()))
    return (node.kind, node.fn, node.inputs, node.params, attrs)


def _freeze(v):
    if isinstance(v, (list, tuple)):
        return tuple(_freeze(x) for x in v)
    return v


def common_subexpression_eliminate(module: Module) -> Module:
    """Merge structurally identical nodes (same kind/fn/inputs/attrs).

    Used after reorganization, which can materialise the same vertex
    projection for both Scatter operands; CSE folds them back into one
    (paper §4: the projection is computed once per vertex).
    """
    replace: dict = {}
    seen: dict = {}
    nodes = []
    for node in module.nodes:
        remapped = OpNode(
            kind=node.kind,
            fn=node.fn,
            inputs=tuple(replace.get(i, i) for i in node.inputs),
            outputs=node.outputs,
            params=tuple(replace.get(p, p) for p in node.params),
            attrs=dict(node.attrs),
            macro=node.macro,
        )
        key = _node_key(remapped)
        prior = seen.get(key)
        if prior is not None:
            for mine, theirs in zip(remapped.outputs, prior.outputs):
                replace[mine] = theirs
            continue
        seen[key] = remapped
        nodes.append(remapped)

    outputs = [replace.get(o, o) for o in module.outputs]
    defined = {o for n in nodes for o in n.outputs}
    keep = set(module.inputs) | set(module.params) | defined
    specs = {name: spec for name, spec in module.specs.items() if name in keep}
    return prune_dead(
        Module(
            name=module.name,
            nodes=nodes,
            specs=specs,
            inputs=list(module.inputs),
            params=list(module.params),
            outputs=outputs,
        )
    )
