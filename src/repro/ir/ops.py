"""Operator nodes and their per-node cost formulas.

Each node is a pure-metadata record: an operator kind, a function name
resolved against :mod:`repro.ir.functions`, named input/param/output
values, and an attribute dict.  Cost methods evaluate the paper's
counting conventions on a :class:`~repro.graph.stats.GraphStats`:

FLOPs
    ``Scatter``/``Apply`` cost their function's per-row FLOPs times the
    domain extent; ``Gather`` costs one FLOP per reduced element
    (``|E| × feat``).

DRAM IO (per *kernel boundary*; summed by the plan walker)
    Reading a vertex tensor through an edge index costs one row per
    **edge** (the random-access convention the paper uses when it counts
    ``2|E|h`` to read attention operands in §5); reading/writing a
    tensor in its own domain costs its own extent.  Within a fused
    kernel, producer–consumer edges cost nothing — that is exactly the
    saving fusion buys.

Memory
    A node's output occupies ``out_spec.nbytes`` while live; the stash
    decision (training) is made by the recomputation pass, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.graph.stats import GraphStats
from repro.ir.functions import get_apply_fn, get_scatter_fn, PARAM_GRAD_FNS
from repro.ir.tensorspec import Domain, TensorSpec

__all__ = ["OpKind", "OpNode", "GATHER_REDUCES", "LIGHTWEIGHT_PARAM_GRADS"]

GATHER_REDUCES = ("sum", "mean", "max")

# Parameter-gradient reductions cheap enough to fuse into graph kernels
# (tiny accumulator output, O(1) arithmetic per reduced element — on a
# GPU these are atomics into a (K,r)- or bias-shaped buffer).  GEMM-like
# weight gradients stay dense library kernels.
LIGHTWEIGHT_PARAM_GRADS = frozenset(
    {"bias_grad", "gaussian_mu_grad", "gaussian_sigma_grad",
     "param_scale_wgrad"}
)


class OpKind(Enum):
    """The operator taxonomy (paper §2.1, extended for training)."""

    SCATTER = "scatter"        # vertex -> edge
    GATHER = "gather"          # edge -> vertex (attrs: reduce, orientation)
    APPLY = "apply"            # within-domain transform (ApplyEdge/ApplyVertex)
    PARAM_GRAD = "param_grad"  # vertex/edge pair -> weight gradient
    VIEW = "view"              # zero-cost alias

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpKind.{self.name}"


@dataclass
class OpNode:
    """One operator in a :class:`~repro.ir.module.Module` DAG.

    Attributes
    ----------
    kind:
        Operator taxonomy entry.
    fn:
        Function name within the kind's registry.  For ``GATHER`` this is
        the reduction (``sum``/``mean``/``max``); for ``VIEW`` it is
        ``"view"``.
    inputs:
        Names of data-input values.  Convention for ``SCATTER``: the
        first input is read through the edge *source*, the second through
        the *destination* (unary copies list their single operand).
    params:
        Names of parameter-domain values consumed (weights).
    outputs:
        Names of produced values.  Single output everywhere except
        ``GATHER(max)`` which also emits its argmax indices as
        ``outputs[1]``.
    attrs:
        Function attributes (slopes, slice bounds, view shapes,
        gather orientation, …).
    macro:
        Optional macro id shared by nodes expanded from one builder
        macro call (``edge_softmax#3``) — baseline strategies use this to
        model framework-builtin fused kernels.
    """

    kind: OpKind
    fn: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    params: Tuple[str, ...] = ()
    attrs: Dict[str, Any] = field(default_factory=dict)
    macro: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Primary output name (doubles as the node's identity)."""
        return self.outputs[0]

    @property
    def orientation(self) -> str:
        """For GATHER: ``"in"`` (reduce by destination) or ``"out"``."""
        return self.attrs.get("orientation", "in")

    def all_inputs(self) -> Tuple[str, ...]:
        return self.inputs + self.params

    # ------------------------------------------------------------------
    # Classification used by the passes
    # ------------------------------------------------------------------
    def is_expensive(self) -> bool:
        """Expensive Apply- per §3 — fusion barrier, library kernel."""
        if self.kind is OpKind.APPLY:
            return get_apply_fn(self.fn).expensive
        if self.kind is OpKind.PARAM_GRAD:
            return self.fn not in LIGHTWEIGHT_PARAM_GRADS
        return False

    def is_graph_related(self) -> bool:
        """Scatter/Gather — the ops whose access pattern is the graph."""
        return self.kind in (OpKind.SCATTER, OpKind.GATHER)

    def is_fusible(self) -> bool:
        """Graph-related or lightweight Apply (§5's fusion scope)."""
        if self.kind is OpKind.VIEW:
            return True
        return not self.is_expensive()

    def out_domain(self, specs: Mapping[str, TensorSpec]) -> Domain:
        return specs[self.outputs[0]].domain

    # ------------------------------------------------------------------
    # Cost formulas
    # ------------------------------------------------------------------
    def flops(self, specs: Mapping[str, TensorSpec], stats: GraphStats) -> float:
        """Exact arithmetic cost of executing this node once."""
        V, E = stats.num_vertices, stats.num_edges
        if self.kind is OpKind.VIEW:
            return 0.0
        if self.kind is OpKind.SCATTER:
            fn = get_scatter_fn(self.fn)
            if fn.name == "max_grad":
                # Zero-fill |E| rows then route |V| gradient rows.
                out = specs[self.outputs[0]]
                return float(out.elements(V, E))
            u_shape = specs[self.inputs[0]].feat_shape if fn.reads_u else None
            v_idx = 1 if fn.reads_u and fn.reads_v else 0
            v_shape = specs[self.inputs[v_idx]].feat_shape if fn.reads_v else None
            return fn.flops_per_row(u_shape, v_shape) * E
        if self.kind is OpKind.GATHER:
            edge_spec = specs[self.inputs[0]]
            return float(E * edge_spec.feat_elements)
        if self.kind is OpKind.APPLY:
            fn = get_apply_fn(self.fn)
            in_shapes = [specs[n].feat_shape for n in self.inputs]
            param_shapes = [specs[n].feat_shape for n in self.params]
            out_shape = specs[self.outputs[0]].feat_shape
            per_row = fn.flops_per_row(in_shapes, param_shapes, out_shape, self.attrs)
            rows = specs[self.outputs[0]].rows(V, E)
            return per_row * rows
        if self.kind is OpKind.PARAM_GRAD:
            return self._param_grad_flops(specs, stats)
        raise AssertionError(f"unhandled kind {self.kind}")

    def _param_grad_flops(self, specs, stats: GraphStats) -> float:
        V, E = stats.num_vertices, stats.num_edges
        rows = specs[self.inputs[0]].rows(V, E)
        out_elements = specs[self.outputs[0]].feat_elements
        if self.fn in ("linear_wgrad", "head_dot_wgrad"):
            return 2.0 * rows * out_elements
        if self.fn == "bias_grad":
            return float(rows * out_elements)
        if self.fn == "param_scale_wgrad":
            in_elements = specs[self.inputs[0]].elements(V, E)
            return 2.0 * in_elements
        if self.fn in ("gaussian_mu_grad", "gaussian_sigma_grad"):
            return 5.0 * rows * out_elements
        raise KeyError(f"unknown param_grad fn {self.fn!r}")

    # ------------------------------------------------------------------
    def read_rows(
        self, input_name: str, specs: Mapping[str, TensorSpec], stats: GraphStats
    ) -> int:
        """Rows of ``input_name`` this node reads at a kernel boundary.

        Implements the paper's counting convention: vertex operands of a
        Scatter (and of an edge-producing special scatter) are fetched
        once per edge; everything else is streamed in its own extent.
        """
        V, E = stats.num_vertices, stats.num_edges
        spec = specs[input_name]
        if self.kind is OpKind.SCATTER:
            fn = get_scatter_fn(self.fn)
            if fn.vertex_direct_read:
                return spec.rows(V, E)
            if spec.domain is Domain.VERTEX:
                return E
        return spec.rows(V, E)

    def read_bytes(
        self, input_name: str, specs: Mapping[str, TensorSpec], stats: GraphStats
    ) -> int:
        spec = specs[input_name]
        # ``row_bytes`` (not ``feat_elements * itemsize``): quantized
        # rows drag their per-row scale through the memory system on
        # every access, and logical dtypes charge storage width.
        return self.read_rows(input_name, specs, stats) * spec.row_bytes

    def write_bytes(
        self, output_name: str, specs: Mapping[str, TensorSpec], stats: GraphStats
    ) -> int:
        spec = specs[output_name]
        return spec.nbytes(stats.num_vertices, stats.num_edges)

    # ------------------------------------------------------------------
    def recompute_cost_per_element(
        self, specs: Mapping[str, TensorSpec], stats: GraphStats
    ) -> float:
        """§6's ``ComputationCost / MemoryCost`` numerator, per element.

        FLOPs to reproduce one element of this node's primary output.
        Gather-style reductions cost their mean segment length; per-row
        functions cost their per-element arithmetic.
        """
        out = specs[self.outputs[0]]
        out_elements = out.elements(stats.num_vertices, stats.num_edges)
        if out_elements == 0:
            return 0.0
        return self.flops(specs, stats) / out_elements

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = f" params={list(self.params)}" if self.params else ""
        macro = f" macro={self.macro}" if self.macro else ""
        return (
            f"<{self.kind.value}:{self.fn} {list(self.inputs)} -> "
            f"{list(self.outputs)}{params}{macro}>"
        )
