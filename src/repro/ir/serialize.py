"""JSON serialization of IR modules.

Lets compiled computation graphs be persisted, diffed, or shipped to
other tooling.  Round-trips are exact: deserialised modules validate
and compare node-for-node with the original (attr tuples are restored
from JSON lists).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.ir.module import Module
from repro.ir.ops import OpKind, OpNode
from repro.ir.tensorspec import Domain, TensorSpec
from repro.ir.validate import validate_module

__all__ = ["module_to_dict", "module_from_dict", "dumps_module", "loads_module"]

_FORMAT_VERSION = 1


def _attr_to_json(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value


def _attr_from_json(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(value)
    return value


def module_to_dict(module: Module) -> Dict[str, Any]:
    """Plain-dict representation (JSON-compatible)."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": module.name,
        "inputs": list(module.inputs),
        "params": list(module.params),
        "outputs": list(module.outputs),
        "specs": {
            name: {
                "domain": spec.domain.value,
                "feat_shape": list(spec.feat_shape),
                "dtype": spec.dtype,
            }
            for name, spec in module.specs.items()
        },
        "nodes": [
            {
                "kind": node.kind.value,
                "fn": node.fn,
                "inputs": list(node.inputs),
                "outputs": list(node.outputs),
                "params": list(node.params),
                "attrs": {k: _attr_to_json(v) for k, v in node.attrs.items()},
                "macro": node.macro,
            }
            for node in module.nodes
        ],
    }


def module_from_dict(data: Dict[str, Any]) -> Module:
    """Rebuild (and validate) a module from :func:`module_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported module format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    specs = {
        name: TensorSpec(
            Domain(entry["domain"]),
            tuple(entry["feat_shape"]),
            entry["dtype"],
        )
        for name, entry in data["specs"].items()
    }
    nodes = [
        OpNode(
            kind=OpKind(entry["kind"]),
            fn=entry["fn"],
            inputs=tuple(entry["inputs"]),
            outputs=tuple(entry["outputs"]),
            params=tuple(entry["params"]),
            attrs={k: _attr_from_json(v) for k, v in entry["attrs"].items()},
            macro=entry.get("macro"),
        )
        for entry in data["nodes"]
    ]
    module = Module(
        name=data["name"],
        nodes=nodes,
        specs=specs,
        inputs=list(data["inputs"]),
        params=list(data["params"]),
        outputs=list(data["outputs"]),
    )
    validate_module(module)
    return module


def dumps_module(module: Module, **json_kwargs: Any) -> str:
    """Serialise to a JSON string."""
    return json.dumps(module_to_dict(module), **json_kwargs)


def loads_module(text: str) -> Module:
    """Deserialise from a JSON string (validates structurally)."""
    return module_from_dict(json.loads(text))
