"""Function registry: the vocabulary of Scatter and Apply operators.

Separating function *metadata* (this module) from numeric kernels
(:mod:`repro.exec.kernels`) and backward rules
(:mod:`repro.ir.autodiff`) keeps the IR purely declarative — the
optimization passes and cost counters never import NumPy kernels.

The metadata that drives the paper's techniques:

- ``expensive`` — Section 3's split between expensive Apply- (linear
  projections, left to cuBLAS and treated as fusion barriers) and
  lightweight Apply- (element-wise, fusible and cheap to recompute).
- ``is_linear_map`` / ``ScatterFn.linear_coeffs`` — Section 4's
  sufficient condition for propagation postponement: an Apply function
  φ commutes with a Scatter function g when φ is a linear map and g is
  a linear combination of its operands (``φ(au + bv) = aφ(u) + bφ(v)``).
- ``param_concat_axis`` — Section 4's GAT special case: a linear map
  applied to ``u ‖ v`` splits into two linear maps applied to ``u`` and
  ``v`` by slicing the weight along this axis
  (``aᵀ[hu‖hv] = aₗᵀhu + aᵣᵀhv``).
- ``flops_per_row`` — exact FLOP formulas for the computation counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.ir.tensorspec import broadcast_feat_shapes

__all__ = [
    "ScatterFn",
    "ApplyFn",
    "get_scatter_fn",
    "get_apply_fn",
    "list_scatter_fns",
    "list_apply_fns",
    "PARAM_GRAD_FNS",
]

Shape = Tuple[int, ...]


# ======================================================================
# Scatter functions
# ======================================================================
@dataclass(frozen=True)
class ScatterFn:
    """A per-edge function of the two endpoint features.

    Attributes
    ----------
    reads_u, reads_v:
        Whether the source / destination operand participates.  Unary
        copies read exactly one side.
    linear_coeffs:
        ``(cu, cv)`` when the function is the linear combination
        ``cu·u + cv·v`` (``None`` entry = operand unused); ``None`` when
        it is not a linear combination (``u_mul_v``, ``u_concat_v``,
        ``u_dot_v``).  Drives reorganization legality.
    is_concat:
        Concatenation along the last feature axis — eligible for the
        weight-splitting rewrite even though not a linear combination.
    flops_per_out_element:
        Arithmetic cost per output element.
    vertex_direct_read:
        ``True`` for special gradient scatters (``max_grad``) whose
        vertex inputs are read once per *vertex* rather than once per
        edge — affects IO accounting only.
    """

    name: str
    reads_u: bool
    reads_v: bool
    linear_coeffs: Optional[Tuple[Optional[float], Optional[float]]]
    is_concat: bool = False
    flops_per_out_element: float = 0.0
    vertex_direct_read: bool = False

    def out_feat_shape(self, u_shape: Optional[Shape], v_shape: Optional[Shape]) -> Shape:
        """Feature shape of the produced edge tensor."""
        if self.is_concat:
            assert u_shape is not None and v_shape is not None
            if u_shape[:-1] != v_shape[:-1] or not u_shape or not v_shape:
                raise ValueError(
                    f"concat operands must agree on leading feature axes: "
                    f"{u_shape} vs {v_shape}"
                )
            return u_shape[:-1] + (u_shape[-1] + v_shape[-1],)
        if self.name == "u_dot_v":
            assert u_shape is not None and v_shape is not None
            if u_shape != v_shape or not u_shape:
                raise ValueError(f"dot operands must match: {u_shape} vs {v_shape}")
            return u_shape[:-1]
        shapes = [s for s in (u_shape, v_shape) if s is not None]
        return broadcast_feat_shapes(*shapes)

    def flops_per_row(self, u_shape: Optional[Shape], v_shape: Optional[Shape]) -> float:
        """Arithmetic per edge."""
        if self.name == "u_dot_v":
            assert u_shape is not None
            return 2.0 * math.prod(u_shape)
        out = self.out_feat_shape(u_shape, v_shape)
        return self.flops_per_out_element * (math.prod(out) if out else 1.0)


_SCATTER_FNS: Dict[str, ScatterFn] = {}


def _scatter(fn: ScatterFn) -> ScatterFn:
    _SCATTER_FNS[fn.name] = fn
    return fn


COPY_U = _scatter(ScatterFn("copy_u", True, False, (1.0, None)))
COPY_V = _scatter(ScatterFn("copy_v", False, True, (None, 1.0)))
U_ADD_V = _scatter(ScatterFn("u_add_v", True, True, (1.0, 1.0), flops_per_out_element=1.0))
U_SUB_V = _scatter(ScatterFn("u_sub_v", True, True, (1.0, -1.0), flops_per_out_element=1.0))
U_MUL_V = _scatter(ScatterFn("u_mul_v", True, True, None, flops_per_out_element=1.0))
U_DOT_V = _scatter(ScatterFn("u_dot_v", True, True, None))
U_CONCAT_V = _scatter(ScatterFn("u_concat_v", True, True, None, is_concat=True))
# Backward of a max-Gather: route the vertex gradient to the argmax edge.
MAX_GRAD = _scatter(
    ScatterFn(
        "max_grad",
        True,
        True,
        None,
        flops_per_out_element=1.0,
        vertex_direct_read=True,
    )
)


def get_scatter_fn(name: str) -> ScatterFn:
    try:
        return _SCATTER_FNS[name]
    except KeyError:
        raise KeyError(
            f"unknown scatter fn {name!r}; available: {sorted(_SCATTER_FNS)}"
        ) from None


def list_scatter_fns() -> list[str]:
    return sorted(_SCATTER_FNS)


# ======================================================================
# Apply functions
# ======================================================================
def _elementwise_shape(in_shapes: Sequence[Shape], param_shapes, attrs) -> Shape:
    return broadcast_feat_shapes(*in_shapes)


def _elementwise_flops(in_shapes, param_shapes, out_shape: Shape, attrs) -> float:
    return float(math.prod(out_shape)) if out_shape else 1.0


@dataclass(frozen=True)
class ApplyFn:
    """A graph-irrelevant per-row transformation.

    Attributes
    ----------
    arity:
        Number of data inputs (same domain).
    n_params:
        Number of parameter-domain inputs (weights).
    expensive:
        Section 3's classification.  Expensive functions are fusion
        barriers and are executed by library kernels; lightweight ones
        fuse and recompute freely.
    is_linear_map:
        ``φ(ax + by) = aφ(x) + bφ(y)`` — reorganization legality.
    param_concat_axis:
        For linear maps of a concatenated input: the weight axis to
        split so that ``φ_W(u ‖ v) = φ_{Wl}(u) + φ_{Wr}(v)``.
    is_view:
        Zero-cost shape alias; never launches a kernel.
    infer / flops:
        Shape inference and per-row FLOP formula callables with
        signature ``(in_feat_shapes, param_feat_shapes, attrs)`` and
        ``(in_feat_shapes, param_feat_shapes, out_feat_shape, attrs)``.
    """

    name: str
    arity: int
    n_params: int = 0
    expensive: bool = False
    is_linear_map: bool = False
    param_concat_axis: Optional[int] = None
    is_view: bool = False
    infer: Callable[..., Shape] = _elementwise_shape
    flops: Callable[..., float] = _elementwise_flops

    def infer_shape(self, in_shapes, param_shapes=(), attrs=None) -> Shape:
        return self.infer(tuple(in_shapes), tuple(param_shapes), attrs or {})

    def flops_per_row(self, in_shapes, param_shapes=(), out_shape=None, attrs=None) -> float:
        attrs = attrs or {}
        if out_shape is None:
            out_shape = self.infer_shape(in_shapes, param_shapes, attrs)
        return self.flops(tuple(in_shapes), tuple(param_shapes), out_shape, attrs)


_APPLY_FNS: Dict[str, ApplyFn] = {}


def _apply(fn: ApplyFn) -> ApplyFn:
    _APPLY_FNS[fn.name] = fn
    return fn


def get_apply_fn(name: str) -> ApplyFn:
    try:
        return _APPLY_FNS[name]
    except KeyError:
        raise KeyError(
            f"unknown apply fn {name!r}; available: {sorted(_APPLY_FNS)}"
        ) from None


def list_apply_fns() -> list[str]:
    return sorted(_APPLY_FNS)


# ---------------------------------------------------------------------
# Element-wise unary / binary
# ---------------------------------------------------------------------
def _flops_scaled(factor: float):
    def f(in_shapes, param_shapes, out_shape, attrs):
        return factor * (math.prod(out_shape) if out_shape else 1.0)

    return f


IDENTITY = _apply(ApplyFn("identity", 1, is_linear_map=True, flops=_flops_scaled(0.0)))
NEG = _apply(ApplyFn("neg", 1, is_linear_map=True))
RELU = _apply(ApplyFn("relu", 1))
LEAKY_RELU = _apply(ApplyFn("leaky_relu", 1, flops=_flops_scaled(2.0)))
EXP = _apply(ApplyFn("exp", 1, flops=_flops_scaled(4.0)))
SIGMOID = _apply(ApplyFn("sigmoid", 1, flops=_flops_scaled(4.0)))
TANH = _apply(ApplyFn("tanh", 1, flops=_flops_scaled(4.0)))
ADD = _apply(ApplyFn("add", 2))
SUB = _apply(ApplyFn("sub", 2))
MUL = _apply(ApplyFn("mul", 2))
DIV = _apply(ApplyFn("div", 2))
RELU_GRAD = _apply(ApplyFn("relu_grad", 2))
LEAKY_RELU_GRAD = _apply(ApplyFn("leaky_relu_grad", 2, flops=_flops_scaled(2.0)))
SIGMOID_GRAD = _apply(ApplyFn("sigmoid_grad", 2, flops=_flops_scaled(3.0)))
TANH_GRAD = _apply(ApplyFn("tanh_grad", 2, flops=_flops_scaled(3.0)))
CLAMP_MIN = _apply(ApplyFn("clamp_min", 1))


def _scale_shape(in_shapes, param_shapes, attrs) -> Shape:
    return in_shapes[0]


SCALE = _apply(
    ApplyFn("scale", 1, is_linear_map=True, infer=_scale_shape)
)  # attrs: {"factor": float}


# ---------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------
def _view_shape(in_shapes, param_shapes, attrs) -> Shape:
    out = tuple(int(d) for d in attrs["out_shape"])
    if math.prod(out) != math.prod(in_shapes[0]):
        raise ValueError(
            f"view cannot change element count: {in_shapes[0]} -> {out}"
        )
    return out


VIEW = _apply(
    ApplyFn(
        "view", 1, is_linear_map=True, is_view=True,
        infer=_view_shape, flops=_flops_scaled(0.0),
    )
)  # attrs: {"out_shape": tuple}


def _norm_axis(axis: int, rank: int) -> int:
    norm = axis + rank if axis < 0 else axis
    if not 0 <= norm < rank:
        raise ValueError(f"axis {axis} out of range for rank {rank}")
    return norm


def _slice_shape(in_shapes, param_shapes, attrs) -> Shape:
    (shape,) = in_shapes
    if not shape:
        raise ValueError("slice_axis requires a non-scalar feature shape")
    axis = _norm_axis(int(attrs.get("axis", -1)), len(shape))
    start, stop = int(attrs["start"]), int(attrs["stop"])
    if not 0 <= start < stop <= shape[axis]:
        raise ValueError(f"bad slice [{start}:{stop}] of axis {axis} ({shape[axis]})")
    return shape[:axis] + (stop - start,) + shape[axis + 1:]


SLICE_AXIS = _apply(
    ApplyFn("slice_axis", 1, is_linear_map=True, infer=_slice_shape,
            flops=_flops_scaled(0.0))
)  # attrs: {"axis": int (default -1), "start": int, "stop": int}


def _pad_shape(in_shapes, param_shapes, attrs) -> Shape:
    (shape,) = in_shapes
    if not shape:
        raise ValueError("pad_axis requires a non-scalar feature shape")
    axis = _norm_axis(int(attrs.get("axis", -1)), len(shape))
    start, stop, width = (int(attrs[k]) for k in ("start", "stop", "width"))
    if not 0 <= start < stop <= width or shape[axis] != stop - start:
        raise ValueError(
            f"bad pad [{start}:{stop}] into width {width} from axis {axis} "
            f"({shape[axis]})"
        )
    return shape[:axis] + (width,) + shape[axis + 1:]


PAD_AXIS = _apply(
    ApplyFn("pad_axis", 1, is_linear_map=True, infer=_pad_shape)
)  # attrs: {"axis", "start", "stop", "width"} — inverse of slice_axis (zero fill)


def _reduce_to_shape_infer(in_shapes, param_shapes, attrs) -> Shape:
    return tuple(int(d) for d in attrs["target_shape"])


def _reduce_to_shape_flops(in_shapes, param_shapes, out_shape, attrs) -> float:
    return float(math.prod(in_shapes[0])) if in_shapes[0] else 1.0


REDUCE_TO_SHAPE = _apply(
    ApplyFn(
        "reduce_to_shape", 1, is_linear_map=True,
        infer=_reduce_to_shape_infer, flops=_reduce_to_shape_flops,
    )
)  # attrs: {"target_shape": tuple} — undoes right-pad broadcasting in backward


# ---------------------------------------------------------------------
# Projections (expensive Apply-)
# ---------------------------------------------------------------------
def _linear_shape(in_shapes, param_shapes, attrs) -> Shape:
    (x,) = in_shapes
    (w,) = param_shapes
    if len(w) != 2:
        raise ValueError(f"linear weight must be 2-D, got {w}")
    if not x or x[-1] != w[0]:
        raise ValueError(f"linear shape mismatch: input {x} vs weight {w}")
    return x[:-1] + (w[1],)


def _linear_flops(in_shapes, param_shapes, out_shape, attrs) -> float:
    (x,) = in_shapes
    (w,) = param_shapes
    rows = math.prod(x[:-1]) if x[:-1] else 1
    return 2.0 * rows * w[0] * w[1]


LINEAR = _apply(
    ApplyFn(
        "linear", 1, n_params=1, expensive=True, is_linear_map=True,
        param_concat_axis=0, infer=_linear_shape, flops=_linear_flops,
    )
)


def _linear_grad_input_shape(in_shapes, param_shapes, attrs) -> Shape:
    (g,) = in_shapes
    (w,) = param_shapes
    if not g or g[-1] != w[1]:
        raise ValueError(f"linear_grad_input mismatch: grad {g} vs weight {w}")
    return g[:-1] + (w[0],)


LINEAR_GRAD_INPUT = _apply(
    ApplyFn(
        "linear_grad_input", 1, n_params=1, expensive=True, is_linear_map=True,
        infer=_linear_grad_input_shape, flops=_linear_flops,
    )
)

BIAS_ADD = _apply(
    ApplyFn(
        "bias_add", 1, n_params=1,
        infer=lambda i, p, a: broadcast_feat_shapes(i[0], p[0]),
    )
)


def _param_scale_shape(in_shapes, param_shapes, attrs) -> Shape:
    (x,) = in_shapes
    (p,) = param_shapes
    if p != ():
        raise ValueError(f"param_scale expects a scalar parameter, got {p}")
    return x


# GIN's (1+ε) self-term: multiply a tensor by a learnable scalar.  A
# linear map in its data input, so it reorganizes/fuses freely.
PARAM_SCALE = _apply(
    ApplyFn(
        "param_scale", 1, n_params=1, is_linear_map=True,
        infer=_param_scale_shape,
    )
)


def _head_dot_shape(in_shapes, param_shapes, attrs) -> Shape:
    (x,) = in_shapes
    (a,) = param_shapes
    if len(x) < 2 or x[-2:] != a:
        raise ValueError(f"head_dot expects input (..., h, f) matching param {a}, got {x}")
    return x[:-1]


def _head_dot_flops(in_shapes, param_shapes, out_shape, attrs) -> float:
    (a,) = param_shapes
    rows = math.prod(out_shape[:-1]) if out_shape[:-1] else 1
    return 2.0 * rows * a[0] * a[1]


HEAD_DOT = _apply(
    ApplyFn(
        "head_dot", 1, n_params=1, expensive=True, is_linear_map=True,
        param_concat_axis=-1, infer=_head_dot_shape, flops=_head_dot_flops,
    )
)


def _head_dot_grad_input_shape(in_shapes, param_shapes, attrs) -> Shape:
    (g,) = in_shapes
    (a,) = param_shapes
    if not g or g[-1] != a[0]:
        raise ValueError(f"head_dot_grad_input mismatch: grad {g} vs param {a}")
    return g + (a[1],)


HEAD_DOT_GRAD_INPUT = _apply(
    ApplyFn(
        "head_dot_grad_input", 1, n_params=1, is_linear_map=True,
        infer=_head_dot_grad_input_shape,
    )
)


# ---------------------------------------------------------------------
# MoNet Gaussian mixture kernel (Appendix A, GMMConv)
# ---------------------------------------------------------------------
def _gaussian_shape(in_shapes, param_shapes, attrs) -> Shape:
    (m,) = in_shapes
    mu, inv_sigma = param_shapes
    if len(mu) != 2 or mu != inv_sigma:
        raise ValueError(f"gaussian params must be matching (K, r): {mu} vs {inv_sigma}")
    if m != mu[1:]:
        raise ValueError(f"pseudo-coords {m} must have shape (r,) = ({mu[1]},)")
    return (mu[0],)


def _gaussian_flops(in_shapes, param_shapes, out_shape, attrs) -> float:
    mu, _ = param_shapes
    k, r = mu
    return float(k * (3 * r + 4))


GAUSSIAN = _apply(
    ApplyFn(
        "gaussian", 1, n_params=2,
        infer=_gaussian_shape, flops=_gaussian_flops,
    )
)


def _gaussian_grad_input_shape(in_shapes, param_shapes, attrs) -> Shape:
    g, m, w = in_shapes
    mu, _ = param_shapes
    if g != (mu[0],) or w != (mu[0],) or m != (mu[1],):
        raise ValueError(
            f"gaussian_grad_input mismatch: g={g}, m={m}, w={w}, mu={mu}"
        )
    return m


GAUSSIAN_GRAD_INPUT = _apply(
    ApplyFn(
        "gaussian_grad_input", 3, n_params=2,
        infer=_gaussian_grad_input_shape,
        flops=lambda i, p, o, a: float(p[0][0] * p[0][1] * 5),
    )
)


def _kernel_mean_shape(in_shapes, param_shapes, attrs) -> Shape:
    (x,) = in_shapes
    if len(x) < 1:
        raise ValueError("kernel_mean requires a leading kernel axis")
    return x[1:]


KERNEL_MEAN = _apply(
    ApplyFn(
        "kernel_mean", 1, is_linear_map=True, infer=_kernel_mean_shape,
        flops=lambda i, p, o, a: float(math.prod(i[0])),
    )
)


def _kernel_mean_grad_shape(in_shapes, param_shapes, attrs) -> Shape:
    return (int(attrs["num_kernels"]),) + in_shapes[0]


KERNEL_MEAN_GRAD = _apply(
    ApplyFn(
        "kernel_mean_grad", 1, is_linear_map=True, infer=_kernel_mean_grad_shape,
    )
)  # attrs: {"num_kernels": int}


# ---------------------------------------------------------------------
# Parameter-gradient reductions (OpKind.PARAM_GRAD)
# ---------------------------------------------------------------------
# fn name -> (arity, per-row flops callable(in_shapes, out_shape)).
# These reduce a vertex/edge-domain pair into a PARAM-shaped gradient;
# they are always expensive library kernels (GEMM-shaped), never fused.
PARAM_GRAD_FNS: Dict[str, int] = {
    "linear_wgrad": 2,        # (x, grad_y) -> (f_in, f_out)
    "bias_grad": 1,           # (grad_y,) -> bias shape
    "head_dot_wgrad": 2,      # (x, grad_y) -> (h, f)
    "gaussian_mu_grad": 3,    # (m, w, grad_w) -> (K, r)
    "gaussian_sigma_grad": 3, # (m, w, grad_w) -> (K, r)
    "param_scale_wgrad": 2,   # (x, grad_y) -> ()
}
