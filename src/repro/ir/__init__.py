"""Operator IR implementing the paper's GNN abstraction (§2.1, Appendix A).

The IR expresses a GNN layer as a DAG of fine-grained operators over
vertex-, edge-, and parameter-domain tensors:

- ``Scatter`` — per-edge binary function of the two endpoint features,
- ``Gather`` — per-vertex reduction over incident edge features,
- ``Apply`` — graph-irrelevant transformation of features within one
  domain (the paper's ``ApplyEdge`` / ``ApplyVertex``, unified because
  the function set is identical),
- ``ParamGrad`` — cross-row reductions producing weight gradients,
- ``View`` — zero-cost shape aliasing.

Composite operators (``Aggregate``, ``ReduceScatter``/edge-softmax) are
builder macros that expand into the basic set while tagging the emitted
nodes with a shared macro id — the hook baseline strategies use to model
framework-builtin fused kernels (e.g. DGL's edge-softmax and gSpMM).

Module layout:

- :mod:`tensorspec` — tensor domains and byte/element accounting,
- :mod:`functions` — the function registry with the algebraic metadata
  (linearity, concat-decomposability, FLOP formulas) that the
  reorganization pass needs,
- :mod:`ops` — operator node structures and per-node cost formulas,
- :mod:`module` / :mod:`builder` — the DAG container and the authoring
  API used by the model zoo,
- :mod:`autodiff` — backward-graph construction (Appendix B rules),
- :mod:`validate` — structural invariants,
- :mod:`printer` — human-readable and DOT dumps.
"""

from repro.ir.tensorspec import Domain, TensorSpec
from repro.ir.functions import (
    ScatterFn,
    ApplyFn,
    get_scatter_fn,
    get_apply_fn,
    list_scatter_fns,
    list_apply_fns,
)
from repro.ir.ops import OpKind, OpNode
from repro.ir.module import Module
from repro.ir.builder import Builder, Val
from repro.ir.autodiff import differentiate, TrainingGraph
from repro.ir.validate import validate_module
from repro.ir.printer import format_module, to_dot

__all__ = [
    "Domain",
    "TensorSpec",
    "ScatterFn",
    "ApplyFn",
    "get_scatter_fn",
    "get_apply_fn",
    "list_scatter_fns",
    "list_apply_fns",
    "OpKind",
    "OpNode",
    "Module",
    "Builder",
    "Val",
    "differentiate",
    "TrainingGraph",
    "validate_module",
    "format_module",
    "to_dot",
]
