"""Precision policies: dtype-aware feature storage end-to-end.

A *precision* names the storage dtype of every float32 value in a
module — the one knob that moves the paper's computation, IO, and
memory axes at once, because bytes-per-element multiplies into every
gather, every slab, and every cache row:

==========  ==============  =====================================
Precision   Storage dtype   Semantics
==========  ==============  =====================================
``fp32``    ``float32``     the oracle; bit-identical baseline
``fp16``    ``float16``     native half floats; segment reductions
                            accumulate in fp32 and round back
``bf16``    ``bfloat16``    logical 2-byte dtype: computed as
                            float32, round-to-nearest-even on the
                            top 16 bits at node boundaries
``int8``    ``qint8``       quantized *feature gathers* only:
                            VERTEX data inputs stored as symmetric
                            per-row int8 + one fp32 scale per row,
                            dequantized to fp32 before any compute
==========  ==============  =====================================

:func:`apply_precision` rewrites a module's interface specs to the
storage dtype and re-infers every node output, so the analytic
ledgers, the arena planner, and the serving cache all see the shrunk
byte counts without any of them special-casing precision.  The
numeric helpers (:func:`bf16_round`, :func:`quantize_dequantize`)
are what the execution engine uses to *simulate* the storage formats
NumPy cannot represent natively.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ir.tensorspec import Domain, TensorSpec

__all__ = [
    "PRECISIONS",
    "DEFAULT_PRECISION",
    "canonical_precision",
    "storage_dtype",
    "apply_precision",
    "bf16_round",
    "quantize_rows",
    "dequantize_rows",
    "quantize_dequantize",
    "simulate_storage",
    "precision_error_bound",
]

# precision name -> storage dtype for float32 values.
PRECISIONS: Dict[str, str] = {
    "fp32": "float32",
    "fp16": "float16",
    "bf16": "bfloat16",
    "int8": "qint8",
}

DEFAULT_PRECISION = "fp32"

_ALIASES = {
    "float32": "fp32",
    "float16": "fp16",
    "half": "fp16",
    "bfloat16": "bf16",
    "qint8": "int8",
}

# Documented relative-error bounds vs. the fp32 oracle (see README
# differential contract 1b).  fp32 is bit-identical; fp16/bf16 follow
# from 10/7 mantissa bits through shallow GNNs; int8 from the 1/254
# per-row quantisation step amplified by aggregation.
PRECISION_ERROR_BOUNDS: Dict[str, float] = {
    "fp32": 0.0,
    "fp16": 1e-2,
    "bf16": 1e-2,
    "int8": 1e-1,
}


def canonical_precision(precision: str) -> str:
    """Normalise a precision name; raise ``ValueError`` on junk."""
    p = str(precision).lower()
    p = _ALIASES.get(p, p)
    if p not in PRECISIONS:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of "
            f"{sorted(PRECISIONS)}"
        )
    return p


def storage_dtype(precision: str) -> str:
    """Storage dtype (possibly logical) for float32 values."""
    return PRECISIONS[canonical_precision(precision)]


def precision_error_bound(precision: str) -> float:
    """Relative-error bound vs. the fp32 oracle for this precision."""
    return PRECISION_ERROR_BOUNDS[canonical_precision(precision)]


# ======================================================================
# Module transform
# ======================================================================
def apply_precision(module, precision: str):
    """Rewrite ``module``'s float32 specs to the precision's storage dtype.

    * ``fp32`` returns the module unchanged (the oracle path is
      untouched — bit-identical by construction).
    * ``fp16``/``bf16`` re-dtype every float32 input, param, and graph
      constant, then re-infer node outputs topologically so derived
      values inherit the storage dtype.
    * ``int8`` re-dtypes only VERTEX-domain *data* inputs (the feature
      rows a gather actually reads); params, graph constants, and all
      derived values stay float32 — quantisation compresses storage,
      not compute.

    Non-float32 specs (int64 argmax outputs, explicit float64 inputs)
    are never touched.
    """
    from repro.ir.module import GRAPH_CONSTANTS, Module, infer_output_specs

    p = canonical_precision(precision)
    if p == "fp32":
        return module
    storage = PRECISIONS[p]

    produced = set()
    for node in module.nodes:
        produced.update(node.outputs)

    def _rewrite(name: str, spec: TensorSpec) -> TensorSpec:
        if spec.dtype != "float32":
            return spec
        if p == "int8":
            if (
                spec.domain is Domain.VERTEX
                and name in module.inputs
                and name not in GRAPH_CONSTANTS
            ):
                return spec.with_dtype(storage)
            return spec
        return spec.with_dtype(storage)

    # Interface specs (inputs, params, graph constants) first …
    new_specs: Dict[str, TensorSpec] = {}
    infer_specs: Dict[str, TensorSpec] = {}
    for name, spec in module.specs.items():
        if name in produced:
            continue
        new = _rewrite(name, spec)
        new_specs[name] = new
        # qint8 dequantises to float32 before compute, so inference
        # sees the concrete dtype and derived values never carry it.
        infer_specs[name] = (
            new.with_dtype("float32") if new.dtype == "qint8" else new
        )

    # … then re-infer every node output in topological order.
    for node in module.nodes:
        out = infer_output_specs(node, infer_specs)
        new_specs.update(out)
        infer_specs.update(out)

    return Module(
        name=module.name,
        nodes=list(module.nodes),
        specs=new_specs,
        inputs=list(module.inputs),
        params=list(module.params),
        outputs=list(module.outputs),
    )


# ======================================================================
# Numeric simulation helpers
# ======================================================================
def bf16_round(arr: np.ndarray) -> np.ndarray:
    """Round a float32 array to bfloat16 precision (kept as float32).

    Round-to-nearest-even on the top 16 bits of the IEEE-754 bit
    pattern — the hardware semantics of an fp32→bf16→fp32 round trip.
    NaNs and infinities pass through (the RNE increment cannot turn a
    NaN payload into an infinity here because the low mantissa bits
    are truncated afterwards only for finite values).
    """
    arr = np.ascontiguousarray(arr, dtype=np.float32)
    u = arr.view(np.uint32)
    rounded = u + (((u >> np.uint32(16)) & np.uint32(1)) + np.uint32(0x7FFF))
    rounded &= np.uint32(0xFFFF0000)
    out = rounded.view(np.float32)
    finite = np.isfinite(arr)
    if not finite.all():
        out = np.where(finite, out, arr)
    return out.reshape(arr.shape)


def quantize_rows(arr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-row int8 quantisation.

    Returns ``(q, scales)`` with ``q`` int8 in ``[-127, 127]`` and
    ``scales`` float32 of shape ``(rows,)`` where
    ``scale = max|row| / 127`` (1.0 for all-zero rows so dequantisation
    is exact there).
    """
    arr = np.asarray(arr, dtype=np.float32)
    rows = arr.shape[0]
    flat = arr.reshape(rows, -1)
    absmax = np.abs(flat).max(axis=1)
    scales = np.where(absmax > 0, absmax / np.float32(127.0), np.float32(1.0))
    scales = scales.astype(np.float32)
    q = np.clip(np.rint(flat / scales[:, None]), -127, 127).astype(np.int8)
    return q.reshape(arr.shape), scales


def dequantize_rows(q: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_rows`; returns float32."""
    rows = q.shape[0]
    out = q.reshape(rows, -1).astype(np.float32) * scales.astype(np.float32)[:, None]
    return out.reshape(q.shape)


def quantize_dequantize(arr: np.ndarray) -> np.ndarray:
    """Round-trip an array through per-row int8 — the storage simulation."""
    q, scales = quantize_rows(arr)
    return dequantize_rows(q, scales)


def simulate_storage(spec: TensorSpec, arr: np.ndarray) -> np.ndarray:
    """Cast ``arr`` to ``spec``'s execution dtype, simulating its storage.

    fp16 specs cast natively; ``bfloat16`` rounds the float32 mantissa
    (RNE); ``qint8`` round-trips through per-row int8 + scale.
    Non-float arrays (argmax indices) pass through untouched.
    """
    if not np.issubdtype(np.asarray(arr).dtype, np.floating):
        return arr
    arr = np.asarray(arr).astype(spec.concrete_dtype, copy=False)
    if spec.dtype == "bfloat16":
        return bf16_round(arr)
    if spec.dtype == "qint8":
        return quantize_dequantize(arr)
    return arr
