"""Structural validation of IR modules.

Checks performed:

1. every value name has a spec and a unique definition site,
2. node order is topological (defs precede uses),
3. every node re-passes shape/domain inference against the recorded
   specs (catches passes that edit nodes without updating specs),
4. module outputs exist,
5. params are PARAM-domain, graph constants match their reserved specs.
"""

from __future__ import annotations

from typing import Set

from repro.ir.module import GRAPH_CONSTANTS, Module, infer_output_specs
from repro.ir.tensorspec import Domain

__all__ = ["validate_module", "IRValidationError"]


class IRValidationError(ValueError):
    """A structural invariant of the IR was violated."""


def validate_module(module: Module) -> None:
    """Raise :class:`IRValidationError` on any malformed structure."""
    defined: Set[str] = set()

    for name in module.inputs:
        if name not in module.specs:
            raise IRValidationError(f"input {name!r} has no spec")
        if name in defined:
            raise IRValidationError(f"duplicate interface value {name!r}")
        if name in GRAPH_CONSTANTS and module.specs[name] != GRAPH_CONSTANTS[name]:
            raise IRValidationError(
                f"graph constant {name!r} has wrong spec {module.specs[name]}"
            )
        defined.add(name)

    for name in module.params:
        if name not in module.specs:
            raise IRValidationError(f"param {name!r} has no spec")
        if module.specs[name].domain is not Domain.PARAM:
            raise IRValidationError(
                f"param {name!r} must be PARAM domain, got {module.specs[name]}"
            )
        if name in defined:
            raise IRValidationError(f"duplicate interface value {name!r}")
        defined.add(name)

    for node in module.nodes:
        for used in node.all_inputs():
            if used not in defined:
                raise IRValidationError(
                    f"node {node.name!r} uses {used!r} before definition "
                    "(or it is never defined)"
                )
        try:
            inferred = infer_output_specs(node, module.specs)
        except (ValueError, KeyError) as exc:
            raise IRValidationError(f"node {node.name!r}: {exc}") from exc
        for out in node.outputs:
            if out in defined:
                raise IRValidationError(f"value {out!r} defined twice")
            if out not in module.specs:
                raise IRValidationError(f"output {out!r} missing from specs")
            if module.specs[out] != inferred[out]:
                raise IRValidationError(
                    f"spec mismatch for {out!r}: recorded {module.specs[out]} "
                    f"vs inferred {inferred[out]}"
                )
            defined.add(out)

    for out in module.outputs:
        if out not in defined:
            raise IRValidationError(f"module output {out!r} is never defined")

    extra = set(module.specs) - defined
    if extra:
        raise IRValidationError(f"specs recorded for undefined values: {sorted(extra)}")
