"""Structural validation of IR modules.

Checks performed (see :mod:`repro.analysis.structure` for the full
RP0xx inventory):

1. every value name has a spec and a unique definition site,
2. node order is topological (defs precede uses),
3. every node re-passes shape/domain inference against the recorded
   specs (catches passes that edit nodes without updating specs),
4. module outputs exist,
5. params are PARAM-domain, graph constants match their reserved specs.

:func:`validate_module` is now a thin shim over the static analyzer's
structure checker — one diagnostic vocabulary for every layer — that
keeps the historical raising contract: the first ERROR-severity finding
becomes an :class:`IRValidationError` with the same message text as
always.
"""

from __future__ import annotations

from repro.ir.module import Module

__all__ = ["validate_module", "IRValidationError"]


class IRValidationError(ValueError):
    """A structural invariant of the IR was violated."""


def validate_module(module: Module) -> None:
    """Raise :class:`IRValidationError` on any malformed structure."""
    # Imported lazily: the analysis package imports ir modules, and
    # builders call validate_module at IR-construction time.
    from repro.analysis.structure import check_module

    diags = check_module(module)
    if diags:
        raise IRValidationError(diags[0].message)
