"""One-call experiment API: model × dataset × strategy × device → report.

The lowest-friction entry point for downstream users::

    from repro.experiment import run_experiment

    report = run_experiment("gat", "cora", strategy="ours")
    print(report.summary())

Since the Session redesign this module is a thin shim: model factories
live on the unified :data:`repro.registry.MODELS` registry (populated
by :mod:`repro.models`), and :func:`run_experiment` delegates to the
fluent :class:`repro.session.Session`.  Both are re-exported here so
existing imports keep working.
"""

from __future__ import annotations

from typing import Optional

from repro.models.base import GNNModel
from repro.registry import MODELS
from repro.session import ExperimentReport, session
import repro.models  # noqa: F401  (populates the model registry)

__all__ = ["run_experiment", "ExperimentReport", "make_model", "MODEL_REGISTRY"]

#: Back-compat alias: the unified model registry (factories keyed by
#: short name; each takes (in_dim, num_classes)).
MODEL_REGISTRY = MODELS


def make_model(name: str, in_dim: int, num_classes: int) -> GNNModel:
    """Instantiate a registry model with default hyper-parameters."""
    return MODELS.get(name)(in_dim, num_classes)


def run_experiment(
    model: str,
    dataset: str,
    *,
    strategy: str = "ours",
    gpu: str = "RTX3090",
    feature_dim: Optional[int] = None,
    train_steps: int = 0,
    seed: int = 0,
) -> ExperimentReport:
    """Compile, count, and optionally train one configuration.

    Parameters
    ----------
    model / dataset / strategy / gpu:
        Registry names (:data:`repro.registry.MODELS`,
        :func:`repro.graph.datasets.get_dataset`,
        :func:`repro.frameworks.get_strategy`,
        :func:`repro.gpu.spec.get_gpu`).
    feature_dim:
        Input width override (default: the dataset's published width —
        note Cora's 1433 makes concrete runs slow; benches use 64).
    train_steps:
        When positive, runs that many concrete training steps on the
        dataset's graph (requires a non-stats-only dataset) and records
        the loss curve.  Uses the dataset's ground-truth labels when it
        provides them, synthetic planted labels otherwise.
    """
    return (
        session()
        .model(model)
        .dataset(dataset)
        .strategy(strategy)
        .gpu(gpu)
        .feature_dim(feature_dim)
        .report(train_steps=train_steps, seed=seed)
    )
