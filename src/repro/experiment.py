"""One-call experiment API: model × dataset × strategy × device → report.

The lowest-friction entry point for downstream users::

    from repro.experiment import run_experiment

    report = run_experiment("gat", "cora", strategy="ours")
    print(report.summary())

Wraps the registry lookups, compilation, analytic counters, latency
modelling, and (optionally) a concrete training run into a single
:class:`ExperimentReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exec.profiler import Counters
from repro.frameworks import compile_training, get_strategy
from repro.gpu.cost_model import CostModel
from repro.gpu.spec import get_gpu
from repro.graph.datasets import Dataset, get_dataset
from repro.models import GAT, GCN, GIN, RGCN, DotGAT, EdgeConv, GraphSAGE, MoNet
from repro.models.base import GNNModel
from repro.train import Adam, Trainer

__all__ = ["run_experiment", "ExperimentReport", "make_model", "MODEL_REGISTRY"]

#: Model factories keyed by short name; each takes (in_dim, num_classes).
MODEL_REGISTRY = {
    "gat": lambda f, c: GAT(f, (64, c), heads=4),
    "gcn": lambda f, c: GCN(f, (64, c)),
    "sage": lambda f, c: GraphSAGE(f, (64, c)),
    "gin": lambda f, c: GIN(f, (64, c)),
    "monet": lambda f, c: MoNet(f, (16, c), num_kernels=2, pseudo_dim=1),
    "edgeconv": lambda f, c: EdgeConv(f, (64, 64, c)),
    "dotgat": lambda f, c: DotGAT(f, (64, c)),
    "rgcn": lambda f, c: RGCN(f, (64, c), num_relations=3),
}


def make_model(name: str, in_dim: int, num_classes: int) -> GNNModel:
    """Instantiate a registry model with default hyper-parameters."""
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        ) from None
    return factory(in_dim, num_classes)


@dataclass
class ExperimentReport:
    """Everything one configuration produced."""

    model: str
    dataset: str
    strategy: str
    gpu: str
    counters: Counters
    latency_s: float
    fits_device: bool
    losses: List[float] = field(default_factory=list)
    final_accuracy: Optional[float] = None

    def summary(self) -> str:
        lines = [
            f"{self.model} on {self.dataset} [{self.strategy}, {self.gpu}]",
            f"  flops          {self.counters.flops / 1e9:10.2f} G",
            f"  dram io        {self.counters.io_bytes / 2**20:10.2f} MiB",
            f"  peak memory    {self.counters.peak_memory_bytes / 2**20:10.2f} MiB"
            + ("" if self.fits_device else "  ** exceeds device DRAM **"),
            f"  stash          {self.counters.stash_bytes / 2**20:10.2f} MiB",
            f"  kernel launches{self.counters.launches:8d}",
            f"  modelled step  {self.latency_s * 1e3:10.2f} ms",
        ]
        if self.losses:
            lines.append(
                f"  training       {len(self.losses)} steps, "
                f"loss {self.losses[0]:.4f} -> {self.losses[-1]:.4f}"
                + (
                    f", acc {self.final_accuracy:.3f}"
                    if self.final_accuracy is not None
                    else ""
                )
            )
        return "\n".join(lines)


def run_experiment(
    model: str,
    dataset: str,
    *,
    strategy: str = "ours",
    gpu: str = "RTX3090",
    feature_dim: Optional[int] = None,
    train_steps: int = 0,
    seed: int = 0,
) -> ExperimentReport:
    """Compile, count, and optionally train one configuration.

    Parameters
    ----------
    model / dataset / strategy / gpu:
        Registry names (:data:`MODEL_REGISTRY`,
        :func:`repro.graph.datasets.get_dataset`,
        :func:`repro.frameworks.get_strategy`,
        :func:`repro.gpu.spec.get_gpu`).
    feature_dim:
        Input width override (default: the dataset's published width —
        note Cora's 1433 makes concrete runs slow; benches use 64).
    train_steps:
        When positive, runs that many concrete training steps on the
        dataset's graph (requires a non-stats-only dataset) and records
        the loss curve.
    """
    ds: Dataset = get_dataset(dataset)
    in_dim = feature_dim if feature_dim is not None else ds.feature_dim
    gnn = make_model(model, in_dim, ds.num_classes)
    compiled = compile_training(gnn, get_strategy(strategy))
    counters = compiled.counters(ds.stats)
    device = get_gpu(gpu)
    cost = CostModel(device)

    report = ExperimentReport(
        model=model,
        dataset=dataset,
        strategy=strategy,
        gpu=gpu,
        counters=counters,
        latency_s=cost.latency_seconds(counters, ds.stats),
        fits_device=cost.fits(counters),
    )

    if train_steps > 0:
        graph = ds.graph()
        rng = np.random.default_rng(seed)
        feats = ds.features(dim=in_dim, seed=seed)
        labels = (
            feats @ rng.normal(size=(in_dim, ds.num_classes))
        ).argmax(axis=1)
        trainer = Trainer(compiled, graph, precision="float32", seed=seed)
        opt = Adam(lr=0.01)
        acc = None
        for _ in range(train_steps):
            loss, acc = trainer.train_step(feats, labels, opt)
            report.losses.append(loss)
        report.final_accuracy = acc
    return report
