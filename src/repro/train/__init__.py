"""Training substrate: losses, optimizers, and the concrete train loop.

The loop drives a :class:`~repro.frameworks.strategy.CompiledTraining`
through the NumPy engine: forward plan → loss + gradient seed →
backward plan (which contains any recompute cone) → optimizer step.
All strategies produce identical parameter trajectories on the same
model/graph/seed — the invariant the integration tests assert.
"""

from repro.train.loop import Trainer, softmax_cross_entropy, accuracy
from repro.train.minibatch import (
    BatchRecord,
    EpochResult,
    MiniBatchTrainer,
    receptive_hops,
)
from repro.train.optim import SGD, Adam, Optimizer
from repro.train.schedule import (
    CosineLR,
    LRSchedule,
    ScheduledOptimizer,
    StepLR,
    WarmupLR,
)

__all__ = [
    "Trainer",
    "MiniBatchTrainer",
    "EpochResult",
    "BatchRecord",
    "receptive_hops",
    "softmax_cross_entropy",
    "accuracy",
    "SGD",
    "Adam",
    "Optimizer",
    "LRSchedule",
    "StepLR",
    "CosineLR",
    "WarmupLR",
    "ScheduledOptimizer",
]
