"""Loss functions and the concrete training loop."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exec.engine import Engine
from repro.frameworks.strategy import CompiledTraining
from repro.graph.csr import Graph
from repro.ir.autodiff import grad_seed_name
from repro.ir.module import GRAPH_CONSTANTS
from repro.train.optim import Optimizer

__all__ = ["softmax_cross_entropy", "accuracy", "Trainer"]


def softmax_cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Mean masked cross-entropy and its gradient w.r.t. ``logits``.

    Returns ``(loss, grad)`` where ``grad`` has the shape of ``logits``
    and is already divided by the number of contributing rows.
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be (rows, classes), got {logits.shape}")
    n, c = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels must be ({n},), got {labels.shape}")
    shifted = logits - logits.max(axis=1, keepdims=True)
    expd = np.exp(shifted)
    probs = expd / expd.sum(axis=1, keepdims=True)
    rows = np.arange(n)
    nll = -np.log(np.maximum(probs[rows, labels], 1e-30))
    if mask is None:
        count = n
        loss = float(nll.mean())
        grad = probs.copy()
        grad[rows, labels] -= 1.0
        grad /= count
    else:
        mask = mask.astype(bool)
        count = max(int(mask.sum()), 1)
        loss = float(nll[mask].sum() / count)
        grad = np.zeros_like(probs)
        grad[mask] = probs[mask]
        grad[rows[mask], labels[mask]] -= 1.0
        grad /= count
    return loss, grad


def accuracy(
    logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> float:
    pred = logits.argmax(axis=1)
    hit = pred == labels
    if mask is not None:
        hit = hit[mask.astype(bool)]
    return float(hit.mean()) if hit.size else 0.0


class Trainer:
    """Drives one compiled training configuration on one graph.

    Parameters
    ----------
    compiled:
        Output of :func:`repro.frameworks.compile_training`.
    graph:
        Concrete topology.
    params:
        Initial parameter arrays (defaults to the model's initialiser).
    precision:
        Engine float dtype.
    memory_plans:
        Optional arena plan(s) (see :class:`~repro.exec.engine.Engine`'s
        ``memory_plan``): boundary values of the matching plans execute
        through arena-backed slabs, and :attr:`last_peak_bytes` records
        the step's measured live-byte high-watermark.
    """

    def __init__(
        self,
        compiled: CompiledTraining,
        graph: Graph,
        *,
        params: Optional[Dict[str, np.ndarray]] = None,
        precision: str = "float64",
        seed: int = 0,
        memory_plans: Optional[object] = None,
    ):
        if memory_plans is not None and np.dtype(precision) != np.dtype(
            "float32"
        ):
            raise ValueError(
                "memory_plans executes through spec-sized arena slabs "
                'and needs the accounting precision: pass precision="float32"'
            )
        self.compiled = compiled
        self.graph = graph
        self.engine = Engine(
            graph,
            precision=precision,
            memory_plan=memory_plans,
            backend=compiled.strategy.backend,
        )
        #: Measured live-byte high-watermark of the last train/eval step
        #: (max over the forward and backward plan walks).
        self.last_peak_bytes: int = 0
        self.params = dict(
            params if params is not None else compiled.model.init_params(seed)
        )
        if len(compiled.forward.outputs) != 1:
            raise ValueError("Trainer expects a single-output model")
        self.output_name = compiled.forward.outputs[0]

    # ------------------------------------------------------------------
    def forward(self, features: np.ndarray) -> Dict[str, np.ndarray]:
        """Run the forward plan; returns outputs plus stash (wrapped)."""
        arrays = self.compiled.model.make_inputs(self.graph, features)
        arrays.update(self.params)
        env = self.engine.bind(self.compiled.forward, arrays)
        self._fwd_env = env
        return self.engine.run_plan(self.compiled.fwd_plan, env, unwrap=False)

    def backward(
        self,
        fwd_result: Dict[str, np.ndarray],
        seed_grad: np.ndarray,
    ) -> Dict[str, np.ndarray]:
        """Run the backward plan; returns parameter gradients."""
        bwd_module = self.compiled.bwd_plan.module
        env: Dict[str, np.ndarray] = {}
        seed_name = grad_seed_name(self.output_name)
        for name in list(bwd_module.inputs) + list(bwd_module.params):
            if name == seed_name:
                env[name] = seed_grad.astype(self.engine.precision, copy=False)
            elif name in GRAPH_CONSTANTS:
                env[name] = self.engine.graph_constant(name)
            elif name in fwd_result:
                env[name] = fwd_result[name]
            elif name in self._fwd_env:
                env[name] = self._fwd_env[name]
            else:
                raise KeyError(f"backward input {name!r} unavailable")
        grads_raw = self.engine.run_plan(self.compiled.bwd_plan, env)
        return {
            param: grads_raw[gname]
            for param, gname in self.compiled.param_grads.items()
        }

    # ------------------------------------------------------------------
    def train_step(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        optimizer: Optimizer,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[float, float]:
        """One full step; returns ``(loss, accuracy)``."""
        fwd = self.forward(features)
        peak = self.engine.measured_peak_bytes
        logits = fwd[self.output_name]
        loss, grad = softmax_cross_entropy(logits, labels, mask)
        acc = accuracy(logits, labels, mask)
        grads = self.backward(fwd, grad)
        self.last_peak_bytes = max(peak, self.engine.measured_peak_bytes)
        optimizer.step(self.params, grads)
        return loss, acc

    def evaluate(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[float, float]:
        fwd = self.forward(features)
        logits = fwd[self.output_name]
        loss, _ = softmax_cross_entropy(logits, labels, mask)
        return loss, accuracy(logits, labels, mask)
