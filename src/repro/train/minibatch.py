"""Sampled mini-batch training (GraphSAGE / Cluster-GCN style).

Full-graph training — what the paper evaluates — keeps every feature
row resident, so its IO counters never include feature *gathers*.
Sampled training inverts that: per step it draws a seed batch, expands
it to the k-hop receptive field, gathers the field's feature rows, and
runs the compiled plans on the induced subgraph.  The per-step memory
footprint shrinks with the batch size, but overlapping receptive fields
re-gather shared vertices, so epoch-level IO grows — the coordinated
computation/IO/memory tradeoff this module makes measurable.

Semantics
---------
Losses and gradients are masked to the seed set.  For models whose
edge semantics only read quantities local to the receptive field
(GraphSAGE's in-edge mean, GAT's softmax over in-edges), the seeds'
logits — and therefore the masked-loss parameter gradients — are
*exact*: the k-hop in-neighbourhood contains the entire computation
cone of a k-layer model.  Models that read out-degrees of boundary
vertices (GCN's symmetric norm) see the Cluster-GCN approximation.

In the full-batch limit (``batch_size >= num_vertices``) the sampled
epoch *is* one full-graph :class:`~repro.train.loop.Trainer` step, bit
for bit: the receptive field is the sorted full vertex set, the induced
subgraph reproduces the original topology and edge order exactly, and
an all-true seed mask takes the same arithmetic path as no mask.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exec.analytic import vertex_data_inputs
from repro.frameworks.strategy import CompiledTraining
from repro.graph.csr import Graph
from repro.graph.sampling import plan_minibatches
from repro.ir.functions import get_scatter_fn
from repro.ir.module import Module
from repro.ir.ops import OpKind
from repro.ir.tensorspec import Domain
from repro.train.loop import Trainer
from repro.train.optim import Optimizer

__all__ = [
    "MiniBatchTrainer",
    "EpochResult",
    "BatchRecord",
    "receptive_hops",
]


def _scatter_depth(node, specs, depth: Dict[str, int]) -> int:
    """Hop radius of a Scatter's edge output, relative to the edge's
    destination vertex.

    Reading the *source* endpoint moves information one hop (u is an
    in-neighbour of the destination); reading the *destination* does
    not — this is what keeps softmax-normalisation chains
    (gather → copy_v broadcast → divide) at radius 0 instead of
    inflating the count per layer.  ``max_grad``'s direct vertex reads
    are destination-local by the same convention the analytic/multi-GPU
    walkers use.
    """
    fn = get_scatter_fn(node.fn)
    inputs = list(node.inputs)
    contributions = [0]
    idx = 0
    if fn.reads_u:
        u = inputs[idx]
        idx += 1
        d = depth.get(u, 0)
        if specs[u].domain is Domain.VERTEX and not fn.vertex_direct_read:
            d += 1
        contributions.append(d)
    if fn.reads_v and idx < len(inputs):
        contributions.append(depth.get(inputs[idx], 0))
    return max(contributions)


def receptive_hops(module: Module) -> int:
    """Message-passing depth of a module: its receptive-field radius.

    An L-layer GNN needs the L-hop in-neighbourhood of its seeds for
    exact embeddings.  Tracked per value as the hop radius relative to
    the row's anchor vertex (a vertex tensor's own vertex; an edge
    tensor's destination): only a Scatter reading the edge *source*
    crosses to a neighbour, so a 2-layer GAT — whose per-layer softmax
    adds two extra destination-local Gather/broadcast rounds — still
    reports 2, not 6.  Relaxes to a fixed point so node ordering does
    not matter.
    """
    specs = module.specs
    depth: Dict[str, int] = {}
    for _ in range(len(module.nodes) + 1):
        changed = False
        for node in module.nodes:
            if node.kind is OpKind.SCATTER:
                d = _scatter_depth(node, specs, depth)
            else:
                d = max(
                    (depth.get(name, 0) for name in node.all_inputs()),
                    default=0,
                )
                if (
                    node.kind is OpKind.GATHER
                    and node.orientation == "out"
                ):
                    # Out-edge reductions read rows anchored one hop
                    # forward; conservative +1 (forward modules in the
                    # model zoo never use them).
                    d += 1
            for out in node.outputs:
                if depth.get(out, 0) < d:
                    depth[out] = d
                    changed = True
        if not changed:
            break
    return max((depth.get(o, 0) for o in module.outputs), default=0)


@dataclass(frozen=True)
class BatchRecord:
    """One sampled step's outcome plus its measured feature-gather IO."""

    num_seeds: int
    field_size: int
    num_edges: int
    loss: float
    accuracy: float
    #: Bytes of vertex-domain module inputs actually bound into the
    #: engine for this step's receptive field (at engine precision);
    #: reconciles exactly with the analytic per-batch walker when the
    #: engine precision matches the accounting dtype (float32).
    gather_bytes: int
    #: Measured live-byte high-watermark of the step (max over the
    #: forward and backward walks on this batch's induced subgraph).
    #: Populated when the trainer runs with ``memory_plan=True``, where
    #: it reconciles with ``analyze_plan`` on the field's stats.
    peak_bytes: int = 0


@dataclass
class EpochResult:
    """Per-batch records plus seed-weighted epoch aggregates."""

    records: List[BatchRecord] = field(default_factory=list)

    @property
    def num_batches(self) -> int:
        return len(self.records)

    @property
    def num_seeds(self) -> int:
        return sum(r.num_seeds for r in self.records)

    @property
    def loss(self) -> float:
        """Seed-weighted mean loss across batches."""
        total = self.num_seeds
        if total == 0:
            return 0.0
        return sum(r.loss * r.num_seeds for r in self.records) / total

    @property
    def accuracy(self) -> float:
        """Seed-weighted mean accuracy across batches."""
        total = self.num_seeds
        if total == 0:
            return 0.0
        return sum(r.accuracy * r.num_seeds for r in self.records) / total

    @property
    def gather_bytes(self) -> int:
        """Feature rows the epoch fetched, in bytes (overlap included)."""
        return sum(r.gather_bytes for r in self.records)

    @property
    def peak_bytes(self) -> int:
        """Largest single-batch measured footprint (the device-fit max)."""
        return max((r.peak_bytes for r in self.records), default=0)

    @property
    def field_vertices(self) -> int:
        return sum(r.field_size for r in self.records)


class MiniBatchTrainer:
    """Drives one compiled training configuration in sampled mini-batches.

    Per epoch: draw a random vertex partition
    (:func:`~repro.graph.sampling.random_vertex_batches`), expand each
    batch to its receptive field, induce the subgraph, and take one
    optimizer step on the seed-masked loss.  The compiled plan is
    topology-independent, so one compilation serves every batch.

    Parameters
    ----------
    compiled:
        Output of :func:`repro.frameworks.compile_training`.
    graph:
        Full concrete topology batches are sampled from.
    batch_size:
        Seed vertices per step (``>= num_vertices`` = full-graph limit).
    hops:
        Receptive-field radius; default is the compiled forward
        module's :func:`receptive_hops`.
    params / precision / seed:
        As for :class:`~repro.train.loop.Trainer`.
    sampler_seed:
        Seeds the batch-sampling RNG (one stream across epochs).  The
        first epoch's schedule equals
        ``plan_minibatches(graph, batch_size, hops,
        rng=np.random.default_rng(sampler_seed))`` — the analytic
        walker draws the identical schedule from the same seed.
    memory_plan:
        Plan a fresh arena per batch (each receptive field has its own
        extents) and execute through it: every step's boundary values
        live in reused slabs and its ``BatchRecord.peak_bytes``
        measures the live-byte high-watermark.  Requires the
        accounting precision (``precision="float32"``), like every
        measured-vs-analytic reconciliation.
    """

    def __init__(
        self,
        compiled: CompiledTraining,
        graph: Graph,
        *,
        batch_size: int,
        hops: Optional[int] = None,
        params: Optional[Dict[str, np.ndarray]] = None,
        precision: str = "float64",
        seed: int = 0,
        sampler_seed: int = 0,
        memory_plan: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if memory_plan and np.dtype(precision) != np.dtype("float32"):
            raise ValueError(
                "memory_plan=True executes through spec-sized arena "
                "slabs and needs the accounting precision: pass "
                'precision="float32"'
            )
        self.compiled = compiled
        self.graph = graph
        self.batch_size = int(batch_size)
        self.hops = (
            int(hops) if hops is not None
            else receptive_hops(compiled.forward)
        )
        if self.hops < 0:
            raise ValueError("hops must be non-negative")
        self.precision = precision
        self.memory_plan = memory_plan
        self.params = dict(
            params if params is not None else compiled.model.init_params(seed)
        )
        self._rng = np.random.default_rng(sampler_seed)
        self.epochs_trained = 0

    def _field_memory_plans(self, subgraph: Graph):
        """Per-field arena plans (forward + backward) for one batch."""
        from repro.exec.memory import plan_memory

        pinned = list(self.compiled.forward.inputs) + list(
            self.compiled.forward.params
        )
        field_stats = subgraph.stats()
        return [
            plan_memory(self.compiled.fwd_plan, field_stats, pinned=pinned),
            plan_memory(self.compiled.bwd_plan, field_stats, pinned=pinned),
        ]

    # ------------------------------------------------------------------
    def _measured_gather_bytes(self, trainer: Trainer) -> int:
        """Bytes of vertex-data inputs the engine actually bound.

        Same predicate as the analytic walker
        (:func:`repro.exec.analytic.vertex_data_inputs`) — the shared
        definition is what makes the reconciliation contract exact.
        """
        env = trainer._fwd_env
        return sum(
            int(env[name].nbytes)
            for name in vertex_data_inputs(self.compiled.forward)
        )

    def train_epoch(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        optimizer: Optimizer,
    ) -> EpochResult:
        """One full pass over the vertex set; returns per-batch records."""
        result = EpochResult()
        for mb in plan_minibatches(
            self.graph, self.batch_size, self.hops, rng=self._rng
        ):
            trainer = Trainer(
                self.compiled,
                mb.subgraph,
                params=self.params,
                precision=self.precision,
                memory_plans=(
                    self._field_memory_plans(mb.subgraph)
                    if self.memory_plan
                    else None
                ),
            )
            mask = mb.seed_mask()
            loss, acc = trainer.train_step(
                features[mb.vertices],
                labels[mb.vertices],
                optimizer,
                None if mask.all() else mask,
            )
            self.params = trainer.params
            result.records.append(
                BatchRecord(
                    num_seeds=mb.num_seeds,
                    field_size=mb.field_size,
                    num_edges=mb.subgraph.num_edges,
                    loss=loss,
                    accuracy=acc,
                    gather_bytes=self._measured_gather_bytes(trainer),
                    peak_bytes=trainer.last_peak_bytes,
                )
            )
        self.epochs_trained += 1
        return result

    def train(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        optimizer: Optimizer,
        *,
        epochs: int,
    ) -> List[EpochResult]:
        """Run ``epochs`` passes; returns one :class:`EpochResult` each."""
        return [
            self.train_epoch(features, labels, optimizer)
            for _ in range(epochs)
        ]

    def evaluate(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[float, float]:
        """Full-graph evaluation with the current parameters."""
        trainer = Trainer(
            self.compiled,
            self.graph,
            params=self.params,
            precision=self.precision,
        )
        return trainer.evaluate(features, labels, mask)
