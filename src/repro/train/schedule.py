"""Learning-rate schedules.

Schedules wrap an :class:`~repro.train.optim.Optimizer` and mutate its
``lr`` before each step.  Composable with any optimizer in the library.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

from repro.train.optim import Optimizer

__all__ = ["LRSchedule", "StepLR", "CosineLR", "WarmupLR", "ScheduledOptimizer"]


class LRSchedule(abc.ABC):
    """Maps a step counter to a learning rate."""

    @abc.abstractmethod
    def lr_at(self, step: int, base_lr: float) -> float:
        ...


class StepLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``period`` steps."""

    def __init__(self, period: int, gamma: float = 0.5):
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.period = period
        self.gamma = gamma

    def lr_at(self, step: int, base_lr: float) -> float:
        return base_lr * self.gamma ** (step // self.period)


class CosineLR(LRSchedule):
    """Cosine annealing from the base rate to ``min_lr`` over ``total`` steps."""

    def __init__(self, total: int, min_lr: float = 0.0):
        if total <= 0:
            raise ValueError("total must be positive")
        self.total = total
        self.min_lr = min_lr

    def lr_at(self, step: int, base_lr: float) -> float:
        progress = min(step / self.total, 1.0)
        return self.min_lr + 0.5 * (base_lr - self.min_lr) * (
            1 + math.cos(math.pi * progress)
        )


class WarmupLR(LRSchedule):
    """Linear warmup for ``warmup`` steps, then an inner schedule."""

    def __init__(self, warmup: int, after: Optional[LRSchedule] = None):
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        self.warmup = warmup
        self.after = after

    def lr_at(self, step: int, base_lr: float) -> float:
        if self.warmup and step < self.warmup:
            return base_lr * (step + 1) / self.warmup
        if self.after is not None:
            return self.after.lr_at(step - self.warmup, base_lr)
        return base_lr


class ScheduledOptimizer(Optimizer):
    """Optimizer wrapper applying a schedule to the learning rate."""

    def __init__(self, inner: Optimizer, schedule: LRSchedule):
        if not hasattr(inner, "lr"):
            raise TypeError("inner optimizer must expose an 'lr' attribute")
        self.inner = inner
        self.schedule = schedule
        self.base_lr = inner.lr
        self._step = 0

    @property
    def current_lr(self) -> float:
        return self.schedule.lr_at(self._step, self.base_lr)

    def step(self, params, grads) -> None:
        self.inner.lr = self.current_lr
        self.inner.step(params, grads)
        self._step += 1
