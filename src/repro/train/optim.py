"""Optimizers over named parameter dicts."""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer(abc.ABC):
    """Updates a parameter dict in place from a gradient dict.

    Parameters missing from the gradient dict are left untouched
    (their gradient is identically zero).
    """

    @abc.abstractmethod
    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        ...


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, params, grads) -> None:
        for name, grad in grads.items():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            if self.momentum:
                v = self._velocity.get(name)
                v = self.momentum * v + grad if v is not None else grad.copy()
                self._velocity[name] = v
                update = v
            else:
                update = grad
            params[name] = params[name] - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params, grads) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for name, grad in grads.items():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            m = self._m.get(name, np.zeros_like(grad))
            v = self._v.get(name, np.zeros_like(grad))
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad * grad
            self._m[name], self._v[name] = m, v
            m_hat = m / (1 - b1 ** self._t)
            v_hat = v / (1 - b2 ** self._t)
            params[name] = params[name] - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
